"""Fixed-bin-width histograms.

Every histogram figure in the paper specifies an absolute bin width (10 µs
for the application-level Figure 3, 50 µs for the MiniFE/MiniMD
process-iteration examples, 1 ms for MiniQMC) rather than a bin count, so the
helper here is organised around a ``bin_width`` parameter and reports bins in
the same unit as the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class FixedWidthHistogram:
    """A histogram with equal-width bins.

    Attributes
    ----------
    edges:
        Bin edges, length ``len(counts) + 1``.
    counts:
        Occupancy of each bin.
    bin_width:
        The (uniform) bin width.
    unit:
        Unit label of the edges.
    """

    edges: np.ndarray
    counts: np.ndarray
    bin_width: float
    unit: str = "s"

    @property
    def n_bins(self) -> int:
        return len(self.counts)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    @property
    def centers(self) -> np.ndarray:
        """Bin centres."""
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    @property
    def mode_center(self) -> float:
        """Centre of the most populated bin (the 'peak' the paper refers to)."""
        return float(self.centers[int(np.argmax(self.counts))])

    def density(self) -> np.ndarray:
        """Counts normalised to integrate to one."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / (total * self.bin_width)

    def spread(self) -> float:
        """Width of the occupied range (last non-empty bin end − first start)."""
        occupied = np.nonzero(self.counts)[0]
        if len(occupied) == 0:
            return 0.0
        return float(self.edges[occupied[-1] + 1] - self.edges[occupied[0]])

    def to_dict(self) -> Dict[str, list]:
        """JSON-friendly representation (used by the figure exporters)."""
        return {
            "edges": self.edges.tolist(),
            "counts": self.counts.tolist(),
            "bin_width": self.bin_width,
            "unit": self.unit,
        }


def fixed_width_histogram(
    samples,
    bin_width: float,
    *,
    origin: Optional[float] = None,
    unit: str = "s",
    max_bins: int = 2_000_000,
) -> FixedWidthHistogram:
    """Histogram ``samples`` into bins of exactly ``bin_width``.

    Parameters
    ----------
    samples:
        1-D array of values.
    bin_width:
        Bin width in the same unit as ``samples``.
    origin:
        Left edge of the first bin; defaults to ``floor(min / width) * width``
        so edges land on multiples of the bin width.
    unit:
        Unit label carried into the result.
    max_bins:
        Guard against absurd bin counts from a mistaken unit.
    """
    arr = np.asarray(samples, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot histogram an empty sample set")
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    lo = float(arr.min())
    hi = float(arr.max())
    if origin is None:
        origin = np.floor(lo / bin_width) * bin_width
    if origin > lo:
        raise ValueError("origin must not exceed the smallest sample")
    n_bins = int(np.ceil((hi - origin) / bin_width)) + 1
    if n_bins > max_bins:
        raise ValueError(
            f"{n_bins} bins requested (width {bin_width}, range {hi - origin:g}); "
            "check the unit of bin_width"
        )
    edges = origin + bin_width * np.arange(n_bins + 1)
    counts, _ = np.histogram(arr, bins=edges)
    return FixedWidthHistogram(
        edges=edges, counts=counts, bin_width=float(bin_width), unit=unit
    )


def histogram_overlap(a: FixedWidthHistogram, b: FixedWidthHistogram) -> float:
    """Overlap coefficient (∈ [0, 1]) of two equal-width histograms.

    Used by tests to compare measured distributions between the detailed and
    vectorised execution paths.
    """
    if abs(a.bin_width - b.bin_width) > 1e-12:
        raise ValueError("histograms must share a bin width")
    lo = min(a.edges[0], b.edges[0])
    hi = max(a.edges[-1], b.edges[-1])
    width = a.bin_width
    n = int(round((hi - lo) / width))
    grid = np.zeros((2, n))
    for row, hist in enumerate((a, b)):
        start = int(round((hist.edges[0] - lo) / width))
        grid[row, start : start + hist.n_bins] = hist.density() * width
    return float(np.minimum(grid[0], grid[1]).sum())
