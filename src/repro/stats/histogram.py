"""Fixed-bin-width histograms.

Every histogram figure in the paper specifies an absolute bin width (10 µs
for the application-level Figure 3, 50 µs for the MiniFE/MiniMD
process-iteration examples, 1 ms for MiniQMC) rather than a bin count, so the
helper here is organised around a ``bin_width`` parameter and reports bins in
the same unit as the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class FixedWidthHistogram:
    """A histogram with equal-width bins.

    Attributes
    ----------
    edges:
        Bin edges, length ``len(counts) + 1``.
    counts:
        Occupancy of each bin.
    bin_width:
        The (uniform) bin width.
    unit:
        Unit label of the edges.
    """

    edges: np.ndarray
    counts: np.ndarray
    bin_width: float
    unit: str = "s"

    @property
    def n_bins(self) -> int:
        return len(self.counts)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    @property
    def centers(self) -> np.ndarray:
        """Bin centres."""
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    @property
    def mode_center(self) -> float:
        """Centre of the most populated bin (the 'peak' the paper refers to)."""
        return float(self.centers[int(np.argmax(self.counts))])

    def density(self) -> np.ndarray:
        """Counts normalised to integrate to one."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / (total * self.bin_width)

    def spread(self) -> float:
        """Width of the occupied range (last non-empty bin end − first start)."""
        occupied = np.nonzero(self.counts)[0]
        if len(occupied) == 0:
            return 0.0
        return float(self.edges[occupied[-1] + 1] - self.edges[occupied[0]])

    def to_dict(self) -> Dict[str, list]:
        """JSON-friendly representation (used by the figure exporters)."""
        return {
            "edges": self.edges.tolist(),
            "counts": self.counts.tolist(),
            "bin_width": self.bin_width,
            "unit": self.unit,
        }

    def merge(self, other: "FixedWidthHistogram") -> "FixedWidthHistogram":
        """Union of two histograms on the same bin lattice (exact counts).

        Both histograms must share the bin width and have edges on the same
        absolute lattice (``fixed_width_histogram``'s default origin —
        ``floor(min / width) * width`` — guarantees this), so per-shard
        histograms of one campaign merge without any rebinning: counts are
        added on the common integer grid.
        """
        width = self.bin_width
        if abs(width - other.bin_width) > 1e-15 * max(width, 1.0):
            raise ValueError("histograms must share a bin width to merge")
        shift = (other.edges[0] - self.edges[0]) / width
        offset = int(round(shift))
        if abs(shift - offset) > 1e-6:
            raise ValueError("histogram edges are not on a common lattice")
        lo = min(0, offset)
        hi = max(self.n_bins, offset + other.n_bins)
        counts = np.zeros(hi - lo, dtype=self.counts.dtype)
        counts[-lo : -lo + self.n_bins] += self.counts
        counts[offset - lo : offset - lo + other.n_bins] += other.counts
        origin = min(self.edges[0], other.edges[0])
        edges = origin + width * np.arange(len(counts) + 1)
        return FixedWidthHistogram(
            edges=edges, counts=counts, bin_width=width, unit=self.unit
        )


def lattice_layout(lo: float, hi: float, bin_width: float):
    """Grid of the default (lattice-aligned) histogram covering ``[lo, hi]``.

    Returns ``(first_index, origin, n_bins)`` where ``first_index`` is the
    integer lattice index of the first bin (``floor(lo / width)``) and the
    grid is wide enough that every lattice index up to ``floor(hi / width)``
    fits.  A pure function of ``(lo, hi, bin_width)``, shared by
    :func:`fixed_width_histogram` and the streaming accumulator so both
    derive identical edges from identical extremes.
    """
    first = int(np.floor(lo / bin_width))
    origin = first * bin_width
    last = int(np.floor(hi / bin_width))
    n_bins = max(int(np.ceil((hi - origin) / bin_width)) + 1, last - first + 1)
    return first, origin, n_bins


def fixed_width_histogram(
    samples,
    bin_width: float,
    *,
    origin: Optional[float] = None,
    unit: str = "s",
    max_bins: int = 2_000_000,
) -> FixedWidthHistogram:
    """Histogram ``samples`` into bins of exactly ``bin_width``.

    Parameters
    ----------
    samples:
        1-D array of values.
    bin_width:
        Bin width in the same unit as ``samples``.
    origin:
        Left edge of the first bin; defaults to ``floor(min / width) * width``
        so edges land on multiples of the bin width.  With the default,
        every sample is binned by its *integer lattice index*
        (``floor(x / width)``) — a per-sample rule independent of the other
        samples, which is what makes histograms of disjoint sample subsets
        merge exactly into the pooled histogram (samples exactly on a bin
        boundary would otherwise straddle it depending on each subset's
        floating-point edge values).
    unit:
        Unit label carried into the result.
    max_bins:
        Guard against absurd bin counts from a mistaken unit.
    """
    arr = np.asarray(samples, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot histogram an empty sample set")
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    lo = float(arr.min())
    hi = float(arr.max())
    if origin is None:
        first, origin, n_bins = lattice_layout(lo, hi, bin_width)
        if n_bins > max_bins:
            raise ValueError(
                f"{n_bins} bins requested (width {bin_width}, range "
                f"{hi - origin:g}); check the unit of bin_width"
            )
        edges = origin + bin_width * np.arange(n_bins + 1)
        indices = np.floor(arr / bin_width).astype(np.int64) - first
        counts = np.bincount(indices, minlength=n_bins)
        return FixedWidthHistogram(
            edges=edges, counts=counts, bin_width=float(bin_width), unit=unit
        )
    if origin > lo:
        raise ValueError("origin must not exceed the smallest sample")
    n_bins = int(np.ceil((hi - origin) / bin_width)) + 1
    if n_bins > max_bins:
        raise ValueError(
            f"{n_bins} bins requested (width {bin_width}, range {hi - origin:g}); "
            "check the unit of bin_width"
        )
    edges = origin + bin_width * np.arange(n_bins + 1)
    counts, _ = np.histogram(arr, bins=edges)
    return FixedWidthHistogram(
        edges=edges, counts=counts, bin_width=float(bin_width), unit=unit
    )


def histogram_overlap(a: FixedWidthHistogram, b: FixedWidthHistogram) -> float:
    """Overlap coefficient (∈ [0, 1]) of two equal-width histograms.

    Used by tests to compare measured distributions between the detailed and
    vectorised execution paths.
    """
    if abs(a.bin_width - b.bin_width) > 1e-12:
        raise ValueError("histograms must share a bin width")
    lo = min(a.edges[0], b.edges[0])
    hi = max(a.edges[-1], b.edges[-1])
    width = a.bin_width
    n = int(round((hi - lo) / width))
    grid = np.zeros((2, n))
    for row, hist in enumerate((a, b)):
        start = int(round((hist.edges[0] - lo) / width))
        grid[row, start : start + hist.n_bins] = hist.density() * width
    return float(np.minimum(grid[0], grid[1]).sum())
