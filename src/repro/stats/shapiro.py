"""Shapiro–Wilk W test for normality (batch vectorised).

Implements Royston's AS R94 approximation (Royston 1995), valid for
``3 <= n <= 5000``: the expected normal order statistics are approximated by
Blom scores, the weight vector is normalised with Royston's polynomial
corrections for the two largest weights, and the p-value is obtained from the
normalising transformation of ``1 - W``.

All groups in a batch share the same ``n``, so the weight vector is computed
once and applied to the whole sorted matrix — this is what makes a 16 000 ×
48 Table-1 pass run in milliseconds.

Validated against ``scipy.stats.shapiro`` in the test suite (the two use the
same approximation; small differences < 1e-4 in W stem from SciPy's Fortran
implementation of the order-statistic correlation and are asserted to stay
below that tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy.special import ndtr, ndtri  # type: ignore[import-untyped]


@dataclass(frozen=True)
class ShapiroWilkResult:
    """Outcome of the Shapiro–Wilk test for a batch of groups."""

    statistic: np.ndarray
    pvalue: np.ndarray

    def passes(self, alpha: float = 0.05) -> np.ndarray:
        """Boolean mask of groups that *fail to reject* normality at ``alpha``."""
        return self.pvalue > alpha


# Royston (1995) polynomial coefficients (AS R94), highest order first.
_C1 = np.array([-2.706056, 4.434685, -2.071190, -0.147981, 0.221157, 0.0])
_C2 = np.array([-3.582633, 5.682633, -1.752461, -0.293762, 0.042981, 0.0])
_C3 = np.array([-0.0006714, 0.025054, -0.39978, 0.54400])
_C4 = np.array([-0.0020322, 0.062767, -0.77857, 1.38220])
_C5 = np.array([0.0038915, -0.083751, -0.31082, -1.5861])
_C6 = np.array([0.0030302, -0.082676, -0.48030])


def shapiro_weights(n: int) -> np.ndarray:
    """Royston's approximate Shapiro–Wilk weight vector for sample size ``n``."""
    if n < 3:
        raise ValueError(f"Shapiro–Wilk requires n >= 3, got {n}")
    if n > 5000:
        raise ValueError(f"Royston approximation is valid for n <= 5000, got {n}")
    i = np.arange(1, n + 1, dtype=np.float64)
    m = ndtri((i - 0.375) / (n + 0.25))
    msq = float(m @ m)
    c = m / np.sqrt(msq)
    u = 1.0 / np.sqrt(n)
    a = np.array(c)
    if n > 5:
        a_n = np.polyval(_C1, u) + c[-1]
        a_n1 = np.polyval(_C2, u) + c[-2]
        phi = (msq - 2.0 * m[-1] ** 2 - 2.0 * m[-2] ** 2) / (
            1.0 - 2.0 * a_n**2 - 2.0 * a_n1**2
        )
        a[2:-2] = m[2:-2] / np.sqrt(phi)
        a[-1], a[-2] = a_n, a_n1
        a[0], a[1] = -a_n, -a_n1
    else:
        a_n = np.polyval(_C1, u) + c[-1]
        phi = (msq - 2.0 * m[-1] ** 2) / (1.0 - 2.0 * a_n**2)
        if n > 3:
            a[1:-1] = m[1:-1] / np.sqrt(phi)
        a[-1] = a_n
        a[0] = -a_n
    return a


def _pvalue_from_w(w: np.ndarray, n: int) -> np.ndarray:
    """Royston's normalising transformation of ``1 - W`` to a p-value."""
    w = np.clip(w, 1e-12, 1.0 - 1e-12)
    if n == 3:
        # exact distribution for n = 3 (Shapiro & Wilk 1965)
        pi6 = 6.0 / np.pi
        stqr = np.arcsin(np.sqrt(0.75))
        p = pi6 * (np.arcsin(np.sqrt(w)) - stqr)
        return np.clip(p, 0.0, 1.0)
    if n <= 11:
        # Royston 1992 small-sample branch
        gamma = -2.273 + 0.459 * n
        lw = -np.log(gamma - np.log1p(-w))
        mu = np.polyval(_C3, n)
        sigma = np.exp(np.polyval(_C4, n))
    else:
        lw = np.log1p(-w)
        logn = np.log(n)
        mu = np.polyval(_C5, logn)
        sigma = np.exp(np.polyval(_C6, logn))
    z = (lw - mu) / sigma
    return 1.0 - ndtr(z)


def shapiro_wilk(x, *, sorted_x=None) -> ShapiroWilkResult:
    """Shapiro–Wilk W test along the last axis of ``x``.

    Parameters
    ----------
    x:
        Array of shape ``(..., n)`` with ``3 <= n <= 5000``.
    sorted_x:
        Optional presorted copy of ``x`` along the last axis — the fused
        battery sorts once and shares the matrix with Anderson–Darling.
        Must equal ``np.sort(x, axis=-1)``; the result is unchanged.

    Returns
    -------
    ShapiroWilkResult
        Per-group W statistic and p-value.
    """
    arr = np.asarray(x, dtype=np.float64)
    n = arr.shape[-1]
    a = shapiro_weights(n)
    sorted_arr = np.sort(arr, axis=-1) if sorted_x is None else np.asarray(sorted_x)
    mean = sorted_arr.mean(axis=-1, keepdims=True)
    ssq = np.sum((sorted_arr - mean) ** 2, axis=-1)
    numerator = np.square(sorted_arr @ a)
    with np.errstate(divide="ignore", invalid="ignore"):
        w = np.where(ssq > 0, numerator / np.where(ssq > 0, ssq, 1.0), 1.0)
    w = np.clip(w, 0.0, 1.0)
    pvalue = _pvalue_from_w(w, n)
    # Degenerate groups (zero variance) are maximally non-normal in practice:
    # report W = 1 but p = 0 so they count as rejections, mirroring how the
    # measurement pipeline treats constant arrival vectors.
    degenerate = ssq <= 0
    pvalue = np.where(degenerate, 0.0, pvalue)
    return ShapiroWilkResult(statistic=np.asarray(w), pvalue=np.asarray(pvalue))
