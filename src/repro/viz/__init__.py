"""Text-mode visualisation and CSV export of the paper's figures.

The offline environment has no plotting backend, so figures are rendered as
ASCII (for terminal inspection in the examples) and exported as CSV series
(for external plotting).
"""

from repro.viz.ascii import ascii_histogram, ascii_percentile_plot, ascii_table
from repro.viz.export import export_histogram_csv, export_percentiles_csv, export_rows_csv

__all__ = [
    "ascii_histogram",
    "ascii_percentile_plot",
    "ascii_table",
    "export_histogram_csv",
    "export_percentiles_csv",
    "export_rows_csv",
]
