"""ASCII rendering of histograms, percentile plots and tables."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.stats.histogram import FixedWidthHistogram
from repro.stats.percentiles import PercentileSeries


def ascii_histogram(
    histogram: FixedWidthHistogram,
    *,
    width: int = 60,
    max_rows: int = 40,
    unit_scale: float = 1.0e3,
    unit_label: str = "ms",
) -> str:
    """Render a histogram as horizontal bars.

    Bins are merged uniformly if there are more than ``max_rows`` of them so
    the output stays terminal-sized; the merge factor is reported in the
    header.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    counts = histogram.counts.astype(np.int64)
    edges = histogram.edges
    merge = max(int(np.ceil(len(counts) / max_rows)), 1)
    if merge > 1:
        pad = (-len(counts)) % merge
        padded = np.concatenate([counts, np.zeros(pad, dtype=np.int64)])
        counts = padded.reshape(-1, merge).sum(axis=1)
        edges = edges[:: merge]
        if len(edges) < len(counts) + 1:
            edges = np.append(edges, histogram.edges[-1])
    peak = counts.max() if counts.size else 1
    lines = [
        f"histogram: {histogram.total} samples, "
        f"bin width {histogram.bin_width * unit_scale:g} {unit_label}"
        + (f" (rendered {merge} bins/row)" if merge > 1 else "")
    ]
    for idx, count in enumerate(counts):
        lo = edges[idx] * unit_scale
        hi = edges[min(idx + 1, len(edges) - 1)] * unit_scale
        bar = "#" * int(round(width * count / peak)) if peak else ""
        lines.append(f"  [{lo:10.3f}, {hi:10.3f}) {unit_label} | {bar} {count}")
    return "\n".join(lines)


def ascii_percentile_plot(
    series: PercentileSeries,
    *,
    width: int = 72,
    height: int = 20,
    markers: Optional[Dict[float, str]] = None,
) -> str:
    """Render percentile trajectories versus iteration as a character grid."""
    if width < 20 or height < 5:
        raise ValueError("width must be >= 20 and height >= 5")
    markers = markers or {5.0: ".", 25.0: "-", 50.0: "o", 75.0: "+", 95.0: "*"}
    values = series.values
    lo = float(values.min())
    hi = float(values.max())
    span = hi - lo if hi > lo else 1.0
    grid = [[" "] * width for _ in range(height)]
    n_iter = values.shape[1]
    for p_idx, level in enumerate(series.percentiles):
        marker = markers.get(level, "x")
        for column in range(width):
            iteration = min(int(column * n_iter / width), n_iter - 1)
            value = values[p_idx, iteration]
            row = int((hi - value) / span * (height - 1))
            grid[row][column] = marker
    lines = [f"{hi:10.2f} {series.unit} +" + "".join(grid[0])]
    for row in range(1, height - 1):
        lines.append(" " * 14 + "|" + "".join(grid[row]))
    lines.append(f"{lo:10.2f} {series.unit} +" + "".join(grid[-1]))
    lines.append(
        " " * 15 + f"iterations 0 .. {int(series.iterations[-1])}   "
        + " ".join(f"{markers.get(p, 'x')}=p{p:g}" for p in series.percentiles)
    )
    return "\n".join(lines)


def ascii_table(rows: Sequence[Dict[str, object]], *, float_format: str = "{:.2f}") -> str:
    """Render a list of dictionaries as an aligned text table."""
    if not rows:
        return "(empty table)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for key in columns:
            value = row.get(key, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(str(column)), *(len(r[idx]) for r in rendered))
        for idx, column in enumerate(columns)
    ]
    header = " | ".join(str(c).ljust(widths[i]) for i, c in enumerate(columns))
    separator = "-+-".join("-" * w for w in widths)
    lines = [header, separator]
    for cells in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)))
    return "\n".join(lines)
