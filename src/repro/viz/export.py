"""CSV export of figure data (for plotting outside the offline environment)."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Sequence, Union

from repro.stats.histogram import FixedWidthHistogram
from repro.stats.percentiles import PercentileSeries

PathLike = Union[str, Path]


def export_histogram_csv(histogram: FixedWidthHistogram, path: PathLike) -> Path:
    """Write ``bin_start, bin_end, count`` rows."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([f"bin_start_{histogram.unit}", f"bin_end_{histogram.unit}", "count"])
        for idx, count in enumerate(histogram.counts):
            writer.writerow(
                [f"{histogram.edges[idx]:.9g}", f"{histogram.edges[idx + 1]:.9g}", int(count)]
            )
    return target


def export_percentiles_csv(series: PercentileSeries, path: PathLike) -> Path:
    """Write ``iteration, p5, p25, ...`` rows."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["iteration"] + [f"p{level:g}_{series.unit}" for level in series.percentiles]
        )
        for idx, iteration in enumerate(series.iterations):
            writer.writerow(
                [int(iteration)] + [f"{series.values[p, idx]:.6f}" for p in range(len(series.percentiles))]
            )
    return target


def export_rows_csv(rows: Sequence[Dict[str, object]], path: PathLike) -> Path:
    """Write a list of dictionaries as CSV (union of keys, insertion order)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    columns: list = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return target
