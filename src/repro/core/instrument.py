"""Region instrumentation — the Listing-1 analogue.

Two instrumenters are provided:

* :class:`RegionInstrumenter` — collects per-thread enter/exit timestamps from
  the *simulated* OpenMP runtime (:class:`repro.openmp.runtime.OpenMPRuntime`
  executions) and accumulates them into a :class:`~repro.core.timing.TimingDataset`.
  This is the path the proxy-application campaign uses.
* :class:`PythonThreadRegion` — applies the same methodology to a real Python
  thread pool using ``time.monotonic_ns()``.  It exists so the quickstart can
  demonstrate the measurement procedure end-to-end on real threads; because of
  the GIL and the coarse scheduling granularity of CPython the absolute values
  are *not* comparable to native OpenMP measurements (this is exactly the
  limitation that motivates the simulated substrate — see DESIGN.md).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.timing import TimingDataset, TimingRecord
from repro.openmp.forloop import LoopExecution


class RegionInstrumenter:
    """Accumulates per-thread region timings into a dataset.

    Parameters
    ----------
    region:
        Name of the instrumented compute region (e.g. ``"matvec"``).
    application:
        Application label stored in the dataset metadata.
    metadata:
        Extra metadata merged into the dataset.
    """

    def __init__(
        self,
        region: str = "compute",
        application: str = "unknown",
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        self.region = region
        self.application = application
        self.extra_metadata = dict(metadata or {})
        self._rows: Dict[str, List] = {
            "trial": [],
            "process": [],
            "iteration": [],
            "thread": [],
            "start_ns": [],
            "end_ns": [],
            "compute_time_s": [],
        }
        #: already-columnar blocks appended by :meth:`record_block`, kept as
        #: arrays so batched recording never round-trips through Python lists
        self._blocks: List[Dict[str, np.ndarray]] = []

    # ------------------------------------------------------------------
    def record_thread(
        self,
        *,
        trial: int,
        process: int,
        iteration: int,
        thread: int,
        start_ns: int,
        end_ns: int,
    ) -> None:
        """Record one thread's enter/exit timestamps (raw monotonic readings)."""
        if end_ns < start_ns:
            raise ValueError("end_ns must be >= start_ns")
        self._rows["trial"].append(trial)
        self._rows["process"].append(process)
        self._rows["iteration"].append(iteration)
        self._rows["thread"].append(thread)
        self._rows["start_ns"].append(start_ns)
        self._rows["end_ns"].append(end_ns)
        self._rows["compute_time_s"].append((end_ns - start_ns) * 1.0e-9)

    def record_execution(
        self, trial: int, process: int, execution: LoopExecution
    ) -> None:
        """Record every thread of one simulated region execution."""
        for thread in execution.threads:
            self.record_thread(
                trial=trial,
                process=process,
                iteration=execution.iteration,
                thread=thread.thread_id,
                start_ns=thread.start_ns,
                end_ns=thread.end_ns,
            )

    def record_compute_times(
        self,
        *,
        trial: int,
        process: int,
        iteration: int,
        compute_times_s: Sequence[float],
    ) -> None:
        """Record derived compute times directly (vectorised campaign path)."""
        times = np.asarray(compute_times_s, dtype=np.float64)
        if np.any(times < 0):
            raise ValueError("compute times must be non-negative")
        n = len(times)
        self._rows["trial"].extend([trial] * n)
        self._rows["process"].extend([process] * n)
        self._rows["iteration"].extend([iteration] * n)
        self._rows["thread"].extend(range(n))
        self._rows["start_ns"].extend([0] * n)
        self._rows["end_ns"].extend((times * 1e9).astype(np.int64).tolist())
        self._rows["compute_time_s"].extend(times.tolist())

    def record_block(
        self,
        *,
        trial: int,
        process: int,
        compute_times_s: np.ndarray,
        first_iteration: int = 0,
    ) -> None:
        """Record a whole ``(n_iterations, n_threads)`` block columnar-ly.

        The batched campaign backend produces an entire (trial, process)
        shard as one matrix; this appends it as ready-made column arrays —
        iteration ids via ``np.repeat``, thread ids via ``np.tile``, values
        flattened — so shard construction does no per-iteration Python work
        and no list churn.  Iterations are numbered from
        ``first_iteration``; row order matches ``n_iterations`` consecutive
        :meth:`record_compute_times` calls.
        """
        times = np.asarray(compute_times_s, dtype=np.float64)
        if times.ndim != 2:
            raise ValueError(
                "compute_times_s must be 2-D (iterations x threads), "
                f"got shape {times.shape}"
            )
        if np.any(times < 0):
            raise ValueError("compute times must be non-negative")
        n_iterations, n_threads = times.shape
        n = times.size
        # own the values: ravel() of a contiguous input is a view, and the
        # caller may reuse (or mutate) its matrix after recording
        flat = times.reshape(-1).copy()
        self._flush_rows()
        self._blocks.append(
            {
                "trial": np.full(n, trial, dtype=np.int32),
                "process": np.full(n, process, dtype=np.int32),
                "iteration": np.repeat(
                    np.arange(first_iteration, first_iteration + n_iterations), n_threads
                ),
                "thread": np.tile(np.arange(n_threads), n_iterations),
                "start_ns": np.zeros(n, dtype=np.int64),
                "end_ns": (flat * 1e9).astype(np.int64),
                "compute_time_s": flat,
            }
        )

    def record_campaign(
        self,
        *,
        shards: Sequence[Tuple[int, int]],
        compute_times_s: np.ndarray,
        first_iteration: int = 0,
    ) -> None:
        """Record a whole ``(n_shards, n_iterations, n_threads)`` tensor as
        one columnar block.

        The whole-campaign backend produces many (trial, process) shards in
        one chunk; this assembles all their columns at once — trial/process
        ids via ``np.repeat`` over the shard axis, iteration/thread ids via
        one ``repeat``/``tile`` shared by every shard — so a chunk costs one
        block regardless of how many shards it spans.  Row order equals
        consecutive :meth:`record_block` calls per shard, so datasets merge
        bit-identically with per-shard recording.
        """
        times = np.asarray(compute_times_s, dtype=np.float64)
        if times.ndim != 3:
            raise ValueError(
                "compute_times_s must be 3-D (shards x iterations x threads), "
                f"got shape {times.shape}"
            )
        if len(shards) != times.shape[0]:
            raise ValueError(
                f"got {len(shards)} shard ids for {times.shape[0]} planes"
            )
        if np.any(times < 0):
            raise ValueError("compute times must be non-negative")
        n_shards, n_iterations, n_threads = times.shape
        per_shard = n_iterations * n_threads
        flat = times.reshape(-1).copy()
        trials = np.asarray([trial for trial, _ in shards], dtype=np.int32)
        processes = np.asarray([process for _, process in shards], dtype=np.int32)
        self._flush_rows()
        self._blocks.append(
            {
                "trial": np.repeat(trials, per_shard),
                "process": np.repeat(processes, per_shard),
                "iteration": np.tile(
                    np.repeat(
                        np.arange(first_iteration, first_iteration + n_iterations),
                        n_threads,
                    ),
                    n_shards,
                ),
                "thread": np.tile(np.arange(n_threads), n_shards * n_iterations),
                "start_ns": np.zeros(times.size, dtype=np.int64),
                "end_ns": (flat * 1e9).astype(np.int64),
                "compute_time_s": flat,
            }
        )

    def record_columns(self, columns: Dict[str, np.ndarray]) -> None:
        """Append one pre-assembled columnar block.

        The parallel campaign path assembles a chunk's columns inside a
        worker process (via :meth:`record_campaign` there) and ships them
        back as arrays; this appends such a block without re-deriving any
        ids.  The block must carry exactly the canonical column set, with
        equal lengths.
        """
        if set(columns) != set(self._rows):
            raise ValueError(
                f"columns must be exactly {sorted(self._rows)}, "
                f"got {sorted(columns)}"
            )
        arrays = {name: np.asarray(columns[name]) for name in self._rows}
        lengths = {len(values) for values in arrays.values()}
        if len(lengths) != 1:
            raise ValueError(f"column lengths differ: {sorted(lengths)}")
        self._flush_rows()
        self._blocks.append(arrays)

    def _flush_rows(self) -> None:
        """Convert any pending per-row appends into a columnar block, so
        mixed ``record_*`` call sequences keep their chronological order."""
        if not self._rows["compute_time_s"]:
            return
        self._blocks.append(
            {name: np.asarray(values) for name, values in self._rows.items()}
        )
        for values in self._rows.values():
            values.clear()

    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        return len(self._rows["compute_time_s"]) + sum(
            len(block["compute_time_s"]) for block in self._blocks
        )

    def dataset(self) -> TimingDataset:
        """Materialise the accumulated records as a :class:`TimingDataset`."""
        if self.n_records == 0:
            raise ValueError("no records collected yet")
        self._flush_rows()
        if len(self._blocks) == 1:
            columns = dict(self._blocks[0])
        else:
            columns = {
                name: np.concatenate([block[name] for block in self._blocks])
                for name in self._blocks[0]
            }
        metadata = {
            "application": self.application,
            "region": self.region,
            **self.extra_metadata,
        }
        return TimingDataset(columns, metadata)

    def reset(self) -> None:
        """Discard all collected records."""
        for values in self._rows.values():
            values.clear()
        self._blocks.clear()


@dataclass
class _ThreadTimestamps:
    start_ns: int = 0
    end_ns: int = 0


class PythonThreadRegion:
    """Measure a real Python thread pool with the paper's procedure.

    The procedure mirrors Listing 1: every worker synchronises on a barrier,
    reads ``time.monotonic_ns()``, executes its share of the loop iterations,
    reads the clock again, and joins a final barrier.  The derived compute
    times are collected per iteration.

    Parameters
    ----------
    n_threads:
        Size of the thread pool.
    work_fn:
        Callable ``work_fn(item_index)`` executed for every loop item.
    n_items:
        Loop trip count; items are block-distributed (static schedule).
    """

    def __init__(self, n_threads: int, work_fn: Callable[[int], None], n_items: int):
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if n_items < 0:
            raise ValueError("n_items must be non-negative")
        self.n_threads = n_threads
        self.work_fn = work_fn
        self.n_items = n_items

    # ------------------------------------------------------------------
    def _assignment(self) -> List[range]:
        base = self.n_items // self.n_threads
        remainder = self.n_items % self.n_threads
        blocks = []
        start = 0
        for t in range(self.n_threads):
            size = base + (1 if t < remainder else 0)
            blocks.append(range(start, start + size))
            start += size
        return blocks

    def run_iteration(self) -> np.ndarray:
        """Execute one instrumented iteration; returns per-thread compute times (s)."""
        blocks = self._assignment()
        start_barrier = threading.Barrier(self.n_threads)
        timestamps = [_ThreadTimestamps() for _ in range(self.n_threads)]

        def worker(thread_id: int) -> None:
            start_barrier.wait()
            timestamps[thread_id].start_ns = time.monotonic_ns()
            for item in blocks[thread_id]:
                self.work_fn(item)
            timestamps[thread_id].end_ns = time.monotonic_ns()

        threads = [
            threading.Thread(target=worker, args=(t,), name=f"region-worker-{t}")
            for t in range(self.n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return np.array(
            [(ts.end_ns - ts.start_ns) * 1.0e-9 for ts in timestamps]
        )

    def run(
        self,
        n_iterations: int,
        *,
        application: str = "python-threads",
        region: str = "loop",
    ) -> TimingDataset:
        """Run ``n_iterations`` instrumented iterations and return the dataset."""
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        instrumenter = RegionInstrumenter(region=region, application=application)
        for iteration in range(n_iterations):
            times = self.run_iteration()
            instrumenter.record_compute_times(
                trial=0, process=0, iteration=iteration, compute_times_s=times
            )
        return instrumenter.dataset().with_metadata(
            backend="python-threads",
            caveat="GIL-bound measurement; relative shapes only",
        )
