"""Timing records and the columnar timing dataset.

One :class:`TimingRecord` corresponds to one row of the paper's measurement:
*thread ``t`` of process ``p`` spent ``compute_time`` nanoseconds inside the
instrumented compute region of iteration ``i`` of trial ``r``*.  A full paper
campaign has 10 trials × 8 processes × 200 iterations × 48 threads = 768 000
records per application, so the dataset stores them as parallel NumPy columns
rather than as objects.

The *compute time* column is the derived measurement of §3.1: raw
``CLOCK_MONOTONIC`` readings are kept (``start_ns`` / ``end_ns``) but are only
comparable within one thread; all analysis uses ``compute_time_s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

#: Column names of the dataset, in storage order.
COLUMNS: Tuple[str, ...] = (
    "trial",
    "process",
    "iteration",
    "thread",
    "start_ns",
    "end_ns",
    "compute_time_s",
)


@dataclass(frozen=True)
class TimingRecord:
    """One per-thread, per-iteration measurement."""

    trial: int
    process: int
    iteration: int
    thread: int
    start_ns: int
    end_ns: int

    def __post_init__(self) -> None:
        if self.end_ns < self.start_ns:
            raise ValueError(
                "end_ns must be >= start_ns (monotonic clock on a single core)"
            )

    @property
    def compute_time_s(self) -> float:
        """Derived compute time in seconds (the paper's arrival estimate)."""
        return (self.end_ns - self.start_ns) * 1.0e-9

    @property
    def compute_time_ms(self) -> float:
        return self.compute_time_s * 1.0e3


@dataclass(frozen=True)
class TimingShard:
    """One campaign shard: the timing columns of a (trial, process) slice.

    Shards are the unit of work of the sharded campaign backends and of the
    parallel executor: each holds the columns of one trial/process chunk and
    knows where it belongs, so a set of shards can be merged back into a
    :class:`TimingDataset` in the deterministic serial order regardless of the
    order in which workers produced them.

    ``process is None`` marks a shard covering *all* processes of its trial
    (the event-driven backend shards at trial granularity, because the
    per-trial clock domain is consumed across processes).
    """

    trial: int
    process: Optional[int]
    columns: Mapping[str, np.ndarray]

    def __post_init__(self) -> None:
        required = {"trial", "process", "iteration", "thread", "compute_time_s"}
        missing = required - set(self.columns)
        if missing:
            raise ValueError(f"shard is missing required columns: {sorted(missing)}")
        lengths = {name: len(arr) for name, arr in self.columns.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError(f"shard columns have unequal lengths: {lengths}")

    @property
    def n_samples(self) -> int:
        return len(self.columns["compute_time_s"])

    @property
    def sort_key(self) -> Tuple[int, int]:
        """Position of this shard in the serial (trial-major) row order."""
        return (self.trial, -1 if self.process is None else self.process)

    @classmethod
    def from_dataset(
        cls, dataset: "TimingDataset", *, trial: int, process: Optional[int]
    ) -> "TimingShard":
        """Wrap an already-built dataset slice as a shard."""
        columns = {name: dataset.column(name) for name in dataset.columns}
        return cls(trial=trial, process=process, columns=columns)

    def to_dataset(
        self, metadata: Optional[Dict[str, object]] = None
    ) -> "TimingDataset":
        """Materialise this shard alone as a :class:`TimingDataset`."""
        return TimingDataset(dict(self.columns), metadata)


class TimingDataset:
    """Columnar collection of :class:`TimingRecord` rows plus metadata.

    Parameters
    ----------
    columns:
        Mapping of column name → 1-D array.  Required columns: ``trial``,
        ``process``, ``iteration``, ``thread``, ``compute_time_s``; the raw
        ``start_ns`` / ``end_ns`` columns are optional (synthetic generators
        may produce compute times directly).
    metadata:
        Free-form campaign description (application, machine, configuration,
        seed, ...); carried through saves/loads and into reports.
    """

    def __init__(
        self,
        columns: Mapping[str, np.ndarray],
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        required = {"trial", "process", "iteration", "thread", "compute_time_s"}
        missing = required - set(columns)
        if missing:
            raise ValueError(f"missing required columns: {sorted(missing)}")
        length = len(columns["compute_time_s"])
        data: Dict[str, np.ndarray] = {}
        for name, values in columns.items():
            arr = np.asarray(values)
            if arr.ndim != 1 or len(arr) != length:
                raise ValueError(
                    f"column {name!r} must be 1-D of length {length}, got shape {arr.shape}"
                )
            if name in ("trial", "process", "iteration", "thread"):
                data[name] = arr.astype(np.int32)
            elif name in ("start_ns", "end_ns"):
                data[name] = arr.astype(np.int64)
            else:
                data[name] = arr.astype(np.float64)
        if np.any(data["compute_time_s"] < 0):
            raise ValueError("compute times must be non-negative")
        self._data = data
        self.metadata: Dict[str, object] = dict(metadata or {})

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Iterable[TimingRecord],
        metadata: Optional[Dict[str, object]] = None,
    ) -> "TimingDataset":
        """Build a dataset from an iterable of :class:`TimingRecord`."""
        rows = list(records)
        if not rows:
            raise ValueError("cannot build a dataset from zero records")
        columns = {
            "trial": np.array([r.trial for r in rows]),
            "process": np.array([r.process for r in rows]),
            "iteration": np.array([r.iteration for r in rows]),
            "thread": np.array([r.thread for r in rows]),
            "start_ns": np.array([r.start_ns for r in rows], dtype=np.int64),
            "end_ns": np.array([r.end_ns for r in rows], dtype=np.int64),
            "compute_time_s": np.array([r.compute_time_s for r in rows]),
        }
        return cls(columns, metadata)

    @classmethod
    def from_compute_times(
        cls,
        compute_times_s: np.ndarray,
        metadata: Optional[Dict[str, object]] = None,
    ) -> "TimingDataset":
        """Build a dataset from a dense 4-D array of compute times.

        ``compute_times_s`` must have shape
        ``(n_trials, n_processes, n_iterations, n_threads)``.
        """
        arr = np.asarray(compute_times_s, dtype=np.float64)
        if arr.ndim != 4:
            raise ValueError(
                "compute_times_s must be 4-D (trials, processes, iterations, threads)"
            )
        n_trials, n_processes, n_iterations, n_threads = arr.shape
        trial, process, iteration, thread = np.meshgrid(
            np.arange(n_trials),
            np.arange(n_processes),
            np.arange(n_iterations),
            np.arange(n_threads),
            indexing="ij",
        )
        columns = {
            "trial": trial.ravel(),
            "process": process.ravel(),
            "iteration": iteration.ravel(),
            "thread": thread.ravel(),
            "compute_time_s": arr.ravel(),
        }
        return cls(columns, metadata)

    @classmethod
    def merge(
        cls,
        shards: Iterable[TimingShard],
        metadata: Optional[Dict[str, object]] = None,
    ) -> "TimingDataset":
        """Merge campaign shards into one dataset, in serial row order.

        Shards are ordered by ``(trial, process)`` before concatenation, so
        the merged dataset is bit-identical to the one a serial trial-major /
        process-minor campaign loop would have produced — whichever order the
        parallel executor completed the shards in.
        """
        parts = sorted(shards, key=lambda shard: shard.sort_key)
        if not parts:
            raise ValueError("cannot merge zero shards")
        names = set(parts[0].columns)
        for shard in parts[1:]:
            if set(shard.columns) != names:
                raise ValueError(
                    "shards have mismatching columns: "
                    f"{sorted(names)} vs {sorted(shard.columns)}"
                )
        columns = {
            name: np.concatenate([np.asarray(shard.columns[name]) for shard in parts])
            for name in parts[0].columns
        }
        return cls(columns, metadata)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data["compute_time_s"])

    @property
    def n_samples(self) -> int:
        return len(self)

    def column(self, name: str) -> np.ndarray:
        """Raw column array (a view; do not mutate)."""
        return self._data[name]

    @property
    def columns(self) -> Tuple[str, ...]:
        return tuple(self._data.keys())

    @property
    def compute_times_s(self) -> np.ndarray:
        return self._data["compute_time_s"]

    @property
    def compute_times_ms(self) -> np.ndarray:
        return self._data["compute_time_s"] * 1.0e3

    @property
    def trials(self) -> np.ndarray:
        return np.unique(self._data["trial"])

    @property
    def processes(self) -> np.ndarray:
        return np.unique(self._data["process"])

    @property
    def iterations(self) -> np.ndarray:
        return np.unique(self._data["iteration"])

    @property
    def threads(self) -> np.ndarray:
        return np.unique(self._data["thread"])

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def n_processes(self) -> int:
        return len(self.processes)

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    @property
    def application(self) -> str:
        """Application label from metadata (``'unknown'`` if absent)."""
        return str(self.metadata.get("application", "unknown"))

    # ------------------------------------------------------------------
    # selection and reshaping
    # ------------------------------------------------------------------
    def select(
        self,
        *,
        trial: Optional[int] = None,
        process: Optional[int] = None,
        iteration: Optional[int] = None,
        thread: Optional[int] = None,
    ) -> "TimingDataset":
        """Subset of rows matching all given keys."""
        mask = np.ones(len(self), dtype=bool)
        for name, value in (
            ("trial", trial),
            ("process", process),
            ("iteration", iteration),
            ("thread", thread),
        ):
            if value is not None:
                mask &= self._data[name] == value
        if not mask.any():
            raise KeyError(
                f"no rows match trial={trial} process={process} "
                f"iteration={iteration} thread={thread}"
            )
        columns = {name: arr[mask] for name, arr in self._data.items()}
        return TimingDataset(columns, self.metadata)

    def select_iterations(self, iteration_slice: slice) -> "TimingDataset":
        """Subset of rows whose iteration index falls inside ``iteration_slice``."""
        iterations = self.iterations[iteration_slice]
        mask = np.isin(self._data["iteration"], iterations)
        columns = {name: arr[mask] for name, arr in self._data.items()}
        return TimingDataset(columns, self.metadata)

    def is_dense(self) -> bool:
        """Whether every (trial, process, iteration, thread) combination exists once."""
        expected = self.n_trials * self.n_processes * self.n_iterations * self.n_threads
        return len(self) == expected

    def to_dense(self) -> np.ndarray:
        """Dense 4-D array (trials, processes, iterations, threads) of compute times.

        Requires a dense dataset (one record per combination).
        """
        if not self.is_dense():
            raise ValueError("dataset is not dense; cannot reshape to a 4-D array")
        shape = (self.n_trials, self.n_processes, self.n_iterations, self.n_threads)
        dense = np.empty(shape, dtype=np.float64)
        trial_idx = np.searchsorted(self.trials, self._data["trial"])
        process_idx = np.searchsorted(self.processes, self._data["process"])
        iteration_idx = np.searchsorted(self.iterations, self._data["iteration"])
        thread_idx = np.searchsorted(self.threads, self._data["thread"])
        dense[trial_idx, process_idx, iteration_idx, thread_idx] = self._data[
            "compute_time_s"
        ]
        return dense

    # ------------------------------------------------------------------
    # iteration & combination
    # ------------------------------------------------------------------
    def iter_records(self) -> Iterator[TimingRecord]:
        """Yield rows as :class:`TimingRecord` objects (slow path; for tests)."""
        has_raw = "start_ns" in self._data and "end_ns" in self._data
        for idx in range(len(self)):
            if has_raw:
                start = int(self._data["start_ns"][idx])
                end = int(self._data["end_ns"][idx])
            else:
                start = 0
                end = int(round(self._data["compute_time_s"][idx] * 1e9))
            yield TimingRecord(
                trial=int(self._data["trial"][idx]),
                process=int(self._data["process"][idx]),
                iteration=int(self._data["iteration"][idx]),
                thread=int(self._data["thread"][idx]),
                start_ns=start,
                end_ns=end,
            )

    def concat(self, other: "TimingDataset") -> "TimingDataset":
        """Concatenate two datasets (metadata of ``self`` wins on conflicts)."""
        common = set(self._data) & set(other._data)
        columns = {
            name: np.concatenate([self._data[name], other._data[name]])
            for name in sorted(common)
        }
        metadata = {**other.metadata, **self.metadata}
        return TimingDataset(columns, metadata)

    def with_metadata(self, **updates: object) -> "TimingDataset":
        """Copy of the dataset with extra metadata entries.

        An update value of ``None`` removes the entry instead.
        """
        metadata = {**self.metadata, **updates}
        metadata = {k: v for k, v in metadata.items() if v is not None}
        return TimingDataset(dict(self._data), metadata)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Headline numbers used by ``__repr__`` and reports."""
        times_ms = self.compute_times_ms
        return {
            "application": self.application,
            "samples": len(self),
            "trials": self.n_trials,
            "processes": self.n_processes,
            "iterations": self.n_iterations,
            "threads": self.n_threads,
            "median_ms": float(np.median(times_ms)),
            "mean_ms": float(np.mean(times_ms)),
            "min_ms": float(np.min(times_ms)),
            "max_ms": float(np.max(times_ms)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.summary()
        return (
            f"TimingDataset({info['application']!r}, samples={info['samples']}, "
            f"trials={info['trials']}, processes={info['processes']}, "
            f"iterations={info['iterations']}, threads={info['threads']}, "
            f"median={info['median_ms']:.2f}ms)"
        )
