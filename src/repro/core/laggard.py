"""Laggard-thread analysis and iteration classification (§4.2).

The paper flags a process-iteration as *containing a laggard* when its latest
thread arrives more than a threshold (1 ms) after the median thread of that
process-iteration, and reports what fraction of iterations contain one
(22.4 % for MiniFE, 4.8 % for post-warm-up MiniMD).  It also distinguishes
distribution *classes* by example histograms:

* ``NO_LAGGARD`` — tight, unimodal arrival pattern (Fig. 5a / 7b),
* ``LAGGARD`` — tight pattern plus one (or a few) extreme stragglers
  (Fig. 5b / 7c),
* ``WIDE`` — broad spread without a single dominant straggler (Fig. 7a — the
  first 19 MiniMD iterations — and every MiniQMC iteration, Fig. 9).

:func:`classify_iterations` reproduces that taxonomy so the figure generators
can pick representative examples programmatically instead of by hand.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.aggregation import AggregationLevel, GroupedSamples, aggregate
from repro.core.timing import TimingDataset

#: The paper's laggard threshold: "approximately 5% slower than the ... median".
DEFAULT_LAGGARD_THRESHOLD_S = 1.0e-3

#: IQR above which an arrival pattern is considered "wide" rather than tight.
DEFAULT_WIDE_IQR_S = 2.0e-3


class IterationClass(enum.Enum):
    """Arrival-distribution classes observed in the paper's histograms."""

    NO_LAGGARD = "no_laggard"
    LAGGARD = "laggard"
    WIDE = "wide"


@dataclass
class LaggardAnalysis:
    """Per-group laggard metrics for one dataset.

    All arrays have one entry per process-iteration group (the Table-1
    granularity), in the order of ``keys``.
    """

    keys: List[Tuple[int, ...]]
    median_s: np.ndarray
    max_s: np.ndarray
    gap_s: np.ndarray
    iqr_s: np.ndarray
    has_laggard: np.ndarray
    classes: List[IterationClass]
    threshold_s: float
    wide_iqr_s: float

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return len(self.keys)

    @property
    def laggard_fraction(self) -> float:
        """Fraction of process-iterations containing a laggard thread."""
        return float(np.mean(self.has_laggard))

    def class_fraction(self, iteration_class: IterationClass) -> float:
        """Fraction of groups classified as ``iteration_class``."""
        return float(
            np.mean([cls is iteration_class for cls in self.classes])
        )

    def class_counts(self) -> Dict[IterationClass, int]:
        counts = {cls: 0 for cls in IterationClass}
        for cls in self.classes:
            counts[cls] += 1
        return counts

    # ------------------------------------------------------------------
    def exemplar(self, iteration_class: IterationClass) -> Optional[Tuple[int, ...]]:
        """Key of the most typical group of a class (median gap within class).

        Used by the figure generators to pick the single process-iteration
        whose histogram illustrates the class (Figures 5, 7 and 9).
        """
        indices = [
            idx for idx, cls in enumerate(self.classes) if cls is iteration_class
        ]
        if not indices:
            return None
        gaps = self.gap_s[indices]
        target = np.median(gaps)
        best = indices[int(np.argmin(np.abs(gaps - target)))]
        return self.keys[best]

    def summary(self) -> "LaggardSummary":
        """Scalar summary used by the feasibility report."""
        return LaggardSummary(
            laggard_fraction=self.laggard_fraction,
            mean_gap_s=float(np.mean(self.gap_s)),
            max_gap_s=float(np.max(self.gap_s)) if self.n_groups else 0.0,
            mean_iqr_s=float(np.mean(self.iqr_s)),
            max_iqr_s=float(np.max(self.iqr_s)) if self.n_groups else 0.0,
            mean_median_s=float(np.mean(self.median_s)),
            threshold_s=self.threshold_s,
            class_fractions={
                cls.value: self.class_fraction(cls) for cls in IterationClass
            },
        )


@dataclass(frozen=True)
class LaggardSummary:
    """Headline laggard numbers for one application."""

    laggard_fraction: float
    mean_gap_s: float
    max_gap_s: float
    mean_iqr_s: float
    max_iqr_s: float
    mean_median_s: float
    threshold_s: float
    class_fractions: Dict[str, float]

    def as_dict(self) -> Dict[str, float]:
        payload = {
            "laggard_fraction": self.laggard_fraction,
            "mean_gap_ms": self.mean_gap_s * 1e3,
            "max_gap_ms": self.max_gap_s * 1e3,
            "mean_iqr_ms": self.mean_iqr_s * 1e3,
            "max_iqr_ms": self.max_iqr_s * 1e3,
            "mean_median_ms": self.mean_median_s * 1e3,
            "threshold_ms": self.threshold_s * 1e3,
        }
        payload.update(
            {f"class_{name}": value for name, value in self.class_fractions.items()}
        )
        return payload


def analyze_laggards(
    dataset_or_groups: TimingDataset | GroupedSamples,
    *,
    threshold_s: float = DEFAULT_LAGGARD_THRESHOLD_S,
    wide_iqr_s: float = DEFAULT_WIDE_IQR_S,
) -> LaggardAnalysis:
    """Compute per-process-iteration laggard metrics.

    Parameters
    ----------
    dataset_or_groups:
        A timing dataset (aggregated internally at the process-iteration
        level) or an already-grouped :class:`GroupedSamples`.
    threshold_s:
        Laggard threshold (latest − median), 1 ms in the paper.
    wide_iqr_s:
        IQR above which the group counts as ``WIDE`` regardless of laggards.
    """
    if threshold_s <= 0:
        raise ValueError("threshold_s must be positive")
    if isinstance(dataset_or_groups, TimingDataset):
        grouped = aggregate(dataset_or_groups, AggregationLevel.PROCESS_ITERATION)
    else:
        grouped = dataset_or_groups
    median, maximum, gap, iqr, has_laggard, classes = group_laggard_metrics(
        grouped.values, threshold_s=threshold_s, wide_iqr_s=wide_iqr_s
    )
    return LaggardAnalysis(
        keys=list(grouped.keys),
        median_s=median,
        max_s=maximum,
        gap_s=gap,
        iqr_s=iqr,
        has_laggard=has_laggard,
        classes=classes,
        threshold_s=threshold_s,
        wide_iqr_s=wide_iqr_s,
    )


def group_laggard_metrics(
    values: np.ndarray,
    *,
    threshold_s: float = DEFAULT_LAGGARD_THRESHOLD_S,
    wide_iqr_s: float = DEFAULT_WIDE_IQR_S,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, List[IterationClass]]:
    """Per-group laggard metrics of a ``(n_groups, n_threads)`` matrix.

    Shared by :func:`analyze_laggards` and the shard-streaming laggard pass,
    so both paths compute identical per-group values.  Returns
    ``(median, max, gap, iqr, has_laggard, classes)``.
    """
    median = np.median(values, axis=-1)
    maximum = np.max(values, axis=-1)
    gap = maximum - median
    q75, q25 = np.percentile(values, [75.0, 25.0], axis=-1)
    iqr = q75 - q25
    has_laggard = gap > threshold_s
    codes = group_laggard_codes(iqr, has_laggard, wide_iqr_s=wide_iqr_s)
    members = list(IterationClass)
    classes = [members[code] for code in codes.tolist()]
    return median, maximum, gap, iqr, has_laggard, classes


def group_laggard_codes(
    iqr: np.ndarray,
    has_laggard: np.ndarray,
    *,
    wide_iqr_s: float = DEFAULT_WIDE_IQR_S,
) -> np.ndarray:
    """Integer class codes of each group: ``list(IterationClass)`` indices.

    ``0`` = NO_LAGGARD, ``1`` = LAGGARD, ``2`` = WIDE — the vectorised form
    of the classification in :func:`group_laggard_metrics`, small enough to
    stream through the laggards analysis pass as an ``int8`` column.
    """
    codes = np.asarray(has_laggard, dtype=np.int8).copy()
    codes[np.asarray(iqr) > wide_iqr_s] = 2
    return codes


def classify_iterations(
    dataset: TimingDataset,
    *,
    threshold_s: float = DEFAULT_LAGGARD_THRESHOLD_S,
    wide_iqr_s: float = DEFAULT_WIDE_IQR_S,
) -> Dict[IterationClass, List[Tuple[int, ...]]]:
    """Group process-iteration keys by their arrival-distribution class."""
    analysis = analyze_laggards(
        dataset, threshold_s=threshold_s, wide_iqr_s=wide_iqr_s
    )
    result: Dict[IterationClass, List[Tuple[int, ...]]] = {
        cls: [] for cls in IterationClass
    }
    for key, cls in zip(analysis.keys, analysis.classes):
        result[cls].append(key)
    return result
