"""The early-bird feasibility model (Figures 1 and 2, §2 and §5).

Given a per-thread arrival vector (one process-iteration of a timing dataset)
and a partitioned communication buffer, the model answers:

* What does classic bulk-synchronous delivery cost? (send the whole buffer
  after the *last* thread arrives — Figure 1's "before" case.)
* What does early-bird delivery cost? (each thread ``Pready``-s its partition
  at its own arrival — Figure 1's "after" case.)
* How much computation/communication overlap is available? (the "green
  boxes" of Figure 2 — per-thread idle windows between a thread's own arrival
  and the last thread's arrival.)

The network side uses :func:`repro.mpi.partitioned.partitioned_completion_times`
(a FIFO-injection NIC plus a LogGP-style wire model), so the answers account
for the fact that partitions marked ready at the same instant serialise on the
injection link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.mpi.datatypes import DOUBLE, BufferSpec, Datatype
from repro.mpi.network import NetworkModel, omni_path
from repro.mpi.partitioned import PartitionedTransfer, partitioned_completion_times


@dataclass(frozen=True)
class OverlapWindow:
    """One thread's potential overlap window (a green box in Figure 2)."""

    thread: int
    arrival_s: float
    window_s: float

    @property
    def end_s(self) -> float:
        return self.arrival_s + self.window_s


@dataclass
class EarlyBirdOutcome:
    """Result of evaluating one arrival vector against the model."""

    arrivals_s: np.ndarray
    bulk_completion_s: float
    earlybird_completion_s: float
    earlybird_transfer: PartitionedTransfer
    overlap_windows: List[OverlapWindow]
    buffer_bytes: int

    # ------------------------------------------------------------------
    @property
    def last_arrival_s(self) -> float:
        return float(self.arrivals_s.max())

    @property
    def improvement_s(self) -> float:
        """Absolute completion-time gain of early-bird over bulk."""
        return self.bulk_completion_s - self.earlybird_completion_s

    @property
    def speedup(self) -> float:
        """Bulk completion divided by early-bird completion."""
        if self.earlybird_completion_s <= 0:
            return 1.0
        return self.bulk_completion_s / self.earlybird_completion_s

    @property
    def post_compute_communication_s(self) -> float:
        """Communication time still exposed after the last thread arrives."""
        return max(self.earlybird_completion_s - self.last_arrival_s, 0.0)

    @property
    def potential_overlap_s(self) -> float:
        """Total idle time available for overlap (= reclaimable time)."""
        return float(sum(window.window_s for window in self.overlap_windows))

    @property
    def hidden_communication_s(self) -> float:
        """Communication hidden behind laggard compute by early-bird delivery."""
        bulk_exposed = self.bulk_completion_s - self.last_arrival_s
        return max(bulk_exposed - self.post_compute_communication_s, 0.0)

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of the bulk-exposed communication hidden by early-bird."""
        bulk_exposed = self.bulk_completion_s - self.last_arrival_s
        if bulk_exposed <= 0:
            return 0.0
        return self.hidden_communication_s / bulk_exposed

    def as_dict(self) -> Dict[str, float]:
        return {
            "last_arrival_ms": self.last_arrival_s * 1e3,
            "bulk_completion_ms": self.bulk_completion_s * 1e3,
            "earlybird_completion_ms": self.earlybird_completion_s * 1e3,
            "improvement_us": self.improvement_s * 1e6,
            "speedup": self.speedup,
            "potential_overlap_ms": self.potential_overlap_s * 1e3,
            "hidden_communication_us": self.hidden_communication_s * 1e6,
            "overlap_efficiency": self.overlap_efficiency,
            "buffer_bytes": float(self.buffer_bytes),
        }


class EarlyBirdModel:
    """Evaluate early-bird vs bulk delivery for measured arrival vectors.

    Parameters
    ----------
    network:
        Network timing parameters (defaults to the Omni-Path preset).
    buffer_bytes:
        Total bytes each process sends per iteration.  The default, 8 MiB,
        corresponds to e.g. a 200³/8-process MiniFE result vector of doubles;
        benchmarks sweep this value.
    hops:
        Network hops between the communicating ranks.
    """

    def __init__(
        self,
        network: Optional[NetworkModel] = None,
        *,
        buffer_bytes: int = 8 * 1024 * 1024,
        hops: int = 2,
    ) -> None:
        if buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        self.network = network if network is not None else omni_path()
        self.buffer_bytes = int(buffer_bytes)
        self.hops = hops

    # ------------------------------------------------------------------
    def partition_sizes(self, n_partitions: int) -> np.ndarray:
        """Near-equal contiguous partition sizes in bytes (paper's §2 model)."""
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        base = self.buffer_bytes // n_partitions
        remainder = self.buffer_bytes % n_partitions
        sizes = np.full(n_partitions, base, dtype=np.int64)
        sizes[:remainder] += 1
        return sizes

    def overlap_windows(self, arrivals_s: Sequence[float]) -> List[OverlapWindow]:
        """Figure 2's per-thread potential-overlap windows."""
        arr = np.asarray(arrivals_s, dtype=np.float64)
        last = float(arr.max())
        return [
            OverlapWindow(thread=t, arrival_s=float(a), window_s=last - float(a))
            for t, a in enumerate(arr)
        ]

    def bulk_completion(self, arrivals_s: Sequence[float]) -> float:
        """Completion time of a single message sent after the last arrival."""
        arr = np.asarray(arrivals_s, dtype=np.float64)
        start = float(arr.max())
        return start + self.network.message_time(self.buffer_bytes, self.hops)

    def earlybird_transfer(self, arrivals_s: Sequence[float]) -> PartitionedTransfer:
        """Partitioned transfer with one partition per thread, ready at arrival."""
        arr = np.asarray(arrivals_s, dtype=np.float64)
        sizes = self.partition_sizes(len(arr))
        return partitioned_completion_times(
            arr, sizes, self.network, hops=self.hops
        )

    def evaluate(self, arrivals_s: Sequence[float]) -> EarlyBirdOutcome:
        """Full evaluation of one process-iteration arrival vector."""
        arr = np.asarray(arrivals_s, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("arrivals_s must be a non-empty 1-D sequence")
        if np.any(arr < 0):
            raise ValueError("arrival times must be non-negative")
        transfer = self.earlybird_transfer(arr)
        return EarlyBirdOutcome(
            arrivals_s=arr,
            bulk_completion_s=self.bulk_completion(arr),
            earlybird_completion_s=transfer.completion_time,
            earlybird_transfer=transfer,
            overlap_windows=self.overlap_windows(arr),
            buffer_bytes=self.buffer_bytes,
        )

    # ------------------------------------------------------------------
    def evaluate_groups(self, groups: np.ndarray) -> Dict[str, np.ndarray]:
        """Vectorised summary over many process-iteration groups.

        Parameters
        ----------
        groups:
            Matrix ``(n_groups, n_threads)`` of arrival times in seconds.

        Returns
        -------
        dict of arrays
            ``improvement_s``, ``speedup``, ``hidden_s`` and
            ``potential_overlap_s`` per group.
        """
        matrix = np.asarray(groups, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("groups must be a 2-D matrix")
        n_groups, n_threads = matrix.shape
        if n_groups == 0:
            return {
                "improvement_s": np.empty(0),
                "speedup": np.empty(0),
                "hidden_s": np.empty(0),
                "potential_overlap_s": np.empty(0),
            }
        if n_threads == 0:
            raise ValueError("arrivals_s must be a non-empty 1-D sequence")
        if np.any(matrix < 0):
            raise ValueError("arrival times must be non-negative")

        network = self.network
        overhead = network.o_send_s
        wire = network.wire_latency(self.hops)
        sizes = self.partition_sizes(n_threads)
        proto = np.array([network.protocol_overhead(int(nb)) for nb in sizes])
        ser = sizes * network.gap_per_byte_s

        # Replay the FIFO-NIC injection recurrence for every group at once:
        # one step per sorted injection slot instead of one Python call per
        # group.  Each arithmetic op mirrors partitioned_completion_times
        # exactly (same association order), so the per-group results are
        # bit-identical to evaluate() row by row.
        order = np.argsort(matrix, axis=-1, kind="stable")
        sorted_times = np.take_along_axis(matrix, order, axis=-1)
        proto_sorted = proto[order]
        ser_sorted = ser[order]
        busy = np.zeros(n_groups)
        completion = np.full(n_groups, -np.inf)
        for k in range(n_threads):
            post_done = sorted_times[:, k] + overhead + proto_sorted[:, k]
            start = np.maximum(post_done, busy)
            injection_done = start + ser_sorted[:, k]
            delivery = injection_done + wire + network.o_recv_s
            busy = injection_done
            completion = np.maximum(completion, delivery)

        last = matrix.max(axis=-1)
        bulk = last + network.message_time(self.buffer_bytes, self.hops)
        safe = np.where(completion <= 0, 1.0, completion)
        speedup = np.where(completion <= 0, 1.0, bulk / safe)
        post_compute = np.maximum(completion - last, 0.0)
        hidden = np.maximum((bulk - last) - post_compute, 0.0)
        # potential_overlap_s is a sequential per-thread sum in evaluate();
        # keep the same accumulation order for bitwise equality
        potential = np.zeros(n_groups)
        for t in range(n_threads):
            potential = potential + (last - matrix[:, t])
        return {
            "improvement_s": bulk - completion,
            "speedup": speedup,
            "hidden_s": hidden,
            "potential_overlap_s": potential,
        }
