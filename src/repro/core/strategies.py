"""Early-bird delivery strategies (§5's discussion, ablation A1).

The paper's discussion sketches several ways an application could exploit the
measured idle time; this module makes them concrete so their completion times
can be compared on measured (or synthetic) arrival vectors:

* :class:`BulkStrategy` — the BSP baseline: one message after the last thread.
* :class:`FineGrainedStrategy` — one partition per thread, sent at that
  thread's arrival (the pure early-bird model of Figure 1).
* :class:`BinnedStrategy` — "a traditional binning model for aggregating
  data": partitions are flushed whenever ``bin_size`` of them are ready
  (amortises per-message overhead, adds waiting-for-the-bin latency).
* :class:`TimeoutStrategy` — "a system [that] periodically transmits all
  available unsent data with a timeout": flush every ``timeout_s`` after the
  first arrival (suits MiniFE's rare-laggard profile).

All strategies share one NIC/network model so the comparison isolates the
*scheduling* of the data, not the fabric.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mpi.network import NetworkModel, NICModel, omni_path


@dataclass(frozen=True)
class DeliveryOutcome:
    """Completion metrics of one strategy on one arrival vector."""

    strategy: str
    completion_s: float
    first_delivery_s: float
    n_messages: int
    bytes_sent: int
    exposed_after_compute_s: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "strategy": self.strategy,
            "completion_ms": self.completion_s * 1e3,
            "first_delivery_ms": self.first_delivery_s * 1e3,
            "n_messages": float(self.n_messages),
            "bytes_sent": float(self.bytes_sent),
            "exposed_after_compute_us": self.exposed_after_compute_s * 1e6,
        }


class DeliveryStrategy(ABC):
    """A policy mapping per-thread arrivals to network submissions."""

    name: str = "abstract"

    @abstractmethod
    def flush_plan(
        self, arrivals_s: np.ndarray, partition_bytes: np.ndarray
    ) -> List[Tuple[float, int]]:
        """Return the ``(submit_time, nbytes)`` messages the strategy produces."""

    # ------------------------------------------------------------------
    def evaluate(
        self,
        arrivals_s: Sequence[float],
        *,
        buffer_bytes: int,
        network: Optional[NetworkModel] = None,
        hops: int = 2,
    ) -> DeliveryOutcome:
        """Completion metrics of this strategy for one arrival vector."""
        arr = np.asarray(arrivals_s, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("arrivals_s must be a non-empty 1-D sequence")
        if buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        net = network if network is not None else omni_path()
        sizes = _partition_sizes(buffer_bytes, arr.size)
        plan = self.flush_plan(arr, sizes)
        if not plan:
            raise RuntimeError(f"strategy {self.name} produced no messages")
        total_planned = sum(nbytes for _, nbytes in plan)
        if total_planned != buffer_bytes:
            raise RuntimeError(
                f"strategy {self.name} planned {total_planned} bytes, "
                f"expected {buffer_bytes}"
            )
        nic = NICModel(net, hops=hops)
        records = nic.submit_many(
            [nbytes for _, nbytes in plan],
            [t for t, _ in plan],
            labels=[f"{self.name}-{i}" for i in range(len(plan))],
        )
        deliveries = [rec.delivery_time for rec in records]
        return DeliveryOutcome(
            strategy=self.name,
            completion_s=float(max(deliveries)),
            first_delivery_s=float(min(deliveries)),
            n_messages=len(plan),
            bytes_sent=total_planned,
            exposed_after_compute_s=max(float(max(deliveries)) - float(arr.max()), 0.0),
        )


def _partition_sizes(buffer_bytes: int, n_partitions: int) -> np.ndarray:
    base = buffer_bytes // n_partitions
    remainder = buffer_bytes % n_partitions
    sizes = np.full(n_partitions, base, dtype=np.int64)
    sizes[:remainder] += 1
    return sizes


class BulkStrategy(DeliveryStrategy):
    """Single message after the last thread arrives (the BSP baseline)."""

    name = "bulk"

    def flush_plan(
        self, arrivals_s: np.ndarray, partition_bytes: np.ndarray
    ) -> List[Tuple[float, int]]:
        return [(float(arrivals_s.max()), int(partition_bytes.sum()))]


class FineGrainedStrategy(DeliveryStrategy):
    """One partition per thread, submitted at that thread's arrival."""

    name = "fine_grained"

    def flush_plan(
        self, arrivals_s: np.ndarray, partition_bytes: np.ndarray
    ) -> List[Tuple[float, int]]:
        return [
            (float(t), int(b)) for t, b in zip(arrivals_s, partition_bytes)
        ]


class BinnedStrategy(DeliveryStrategy):
    """Flush whenever ``bin_size`` partitions have become ready.

    The final (possibly partial) bin is flushed at the last arrival.
    """

    def __init__(self, bin_size: int = 8) -> None:
        if bin_size < 1:
            raise ValueError("bin_size must be >= 1")
        self.bin_size = bin_size
        self.name = f"binned({bin_size})"

    def flush_plan(
        self, arrivals_s: np.ndarray, partition_bytes: np.ndarray
    ) -> List[Tuple[float, int]]:
        order = np.argsort(arrivals_s, kind="stable")
        plan: List[Tuple[float, int]] = []
        pending_bytes = 0
        pending_count = 0
        for rank, idx in enumerate(order):
            pending_bytes += int(partition_bytes[idx])
            pending_count += 1
            is_last = rank == len(order) - 1
            if pending_count == self.bin_size or is_last:
                plan.append((float(arrivals_s[idx]), pending_bytes))
                pending_bytes = 0
                pending_count = 0
        return plan


class TimeoutStrategy(DeliveryStrategy):
    """Flush all ready-but-unsent partitions every ``timeout_s``.

    Flush clock starts at the first arrival; a final flush happens at the last
    arrival so the message always completes.
    """

    def __init__(self, timeout_s: float = 1.0e-3) -> None:
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.timeout_s = timeout_s
        self.name = f"timeout({timeout_s * 1e3:g}ms)"

    def flush_plan(
        self, arrivals_s: np.ndarray, partition_bytes: np.ndarray
    ) -> List[Tuple[float, int]]:
        order = np.argsort(arrivals_s, kind="stable")
        sorted_arrivals = arrivals_s[order]
        sorted_bytes = partition_bytes[order]
        first = float(sorted_arrivals[0])
        last = float(sorted_arrivals[-1])
        flush_times = [first]
        t = first
        while t < last:
            t += self.timeout_s
            flush_times.append(min(t, last))
        plan: List[Tuple[float, int]] = []
        cursor = 0
        for flush_time in flush_times:
            nbytes = 0
            while cursor < len(sorted_arrivals) and sorted_arrivals[cursor] <= flush_time + 1e-15:
                nbytes += int(sorted_bytes[cursor])
                cursor += 1
            if nbytes > 0:
                plan.append((flush_time, nbytes))
        if cursor < len(sorted_arrivals):  # pragma: no cover - defensive
            remaining = int(sorted_bytes[cursor:].sum())
            plan.append((last, remaining))
        return plan


@dataclass
class StrategyComparison:
    """Outcomes of several strategies on the same arrival vector(s)."""

    outcomes: Dict[str, DeliveryOutcome] = field(default_factory=dict)

    def best(self) -> DeliveryOutcome:
        """Strategy with the earliest completion."""
        return min(self.outcomes.values(), key=lambda o: o.completion_s)

    def completion_table(self) -> Dict[str, float]:
        return {name: outcome.completion_s for name, outcome in self.outcomes.items()}

    def speedup_over_bulk(self) -> Dict[str, float]:
        """Completion-time speed-up of every strategy relative to ``bulk``."""
        if "bulk" not in self.outcomes:
            raise KeyError("comparison does not include the bulk baseline")
        bulk = self.outcomes["bulk"].completion_s
        return {
            name: bulk / outcome.completion_s if outcome.completion_s > 0 else 1.0
            for name, outcome in self.outcomes.items()
        }


def compare_strategies(
    arrivals_s: Sequence[float],
    *,
    buffer_bytes: int,
    strategies: Optional[Sequence[DeliveryStrategy]] = None,
    network: Optional[NetworkModel] = None,
    hops: int = 2,
) -> StrategyComparison:
    """Evaluate a set of strategies on one arrival vector.

    Defaults to the four strategies discussed in §5: bulk, fine-grained,
    binned (bin of 8) and a 1 ms timeout.
    """
    if strategies is None:
        strategies = (
            BulkStrategy(),
            FineGrainedStrategy(),
            BinnedStrategy(8),
            TimeoutStrategy(1.0e-3),
        )
    comparison = StrategyComparison()
    for strategy in strategies:
        comparison.outcomes[strategy.name] = strategy.evaluate(
            arrivals_s, buffer_bytes=buffer_bytes, network=network, hops=hops
        )
    return comparison
