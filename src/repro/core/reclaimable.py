"""Reclaimable time and idle-ratio metrics (§4.2).

Definitions, taken verbatim from the paper's text:

* **Reclaimable time** of one process-iteration: the sum over threads of the
  difference between the latest thread's arrival and each preceding thread's
  arrival, i.e. ``Σ_t (max − t_i)``.  The paper reports the *average amount of
  reclaimable time per iteration* over the whole data set.
* **Ratio of time spent idle**: "the ratio between the cumulative time spent
  idle by all threads that iteration and the latest arrival time that
  iteration multiplied by number of threads", i.e.
  ``Σ_t (max − t_i) / (n_threads × max)``.

See DESIGN.md §"Known internal inconsistencies" — the paper's reported
absolute values for these two metrics cannot both hold under this (textual)
definition together with the reported medians; we therefore report measured
values under the definition above and preserve the qualitative ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.aggregation import AggregationLevel, GroupedSamples, aggregate
from repro.core.timing import TimingDataset


def reclaimable_time(arrivals_s) -> np.ndarray:
    """Reclaimable time of each group: ``Σ_t (max − t_i)`` along the last axis."""
    arr = np.asarray(arrivals_s, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    maxima = arr.max(axis=-1, keepdims=True)
    return np.sum(maxima - arr, axis=-1)


def idle_ratio(arrivals_s) -> np.ndarray:
    """Idle ratio of each group: ``Σ_t (max − t_i) / (n × max)`` along the last axis."""
    arr = np.asarray(arrivals_s, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    n = arr.shape[-1]
    maxima = arr.max(axis=-1)
    reclaim = reclaimable_time(arr)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(maxima > 0, reclaim / (n * np.where(maxima > 0, maxima, 1.0)), 0.0)
    return ratio


@dataclass(frozen=True)
class ReclaimableSummary:
    """Aggregate reclaimable-time metrics for one application."""

    mean_reclaimable_s: float
    median_reclaimable_s: float
    max_reclaimable_s: float
    mean_idle_ratio: float
    mean_per_thread_idle_s: float
    n_groups: int
    n_threads: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "mean_reclaimable_ms": self.mean_reclaimable_s * 1e3,
            "median_reclaimable_ms": self.median_reclaimable_s * 1e3,
            "max_reclaimable_ms": self.max_reclaimable_s * 1e3,
            "mean_idle_ratio": self.mean_idle_ratio,
            "mean_per_thread_idle_ms": self.mean_per_thread_idle_s * 1e3,
            "n_groups": float(self.n_groups),
            "n_threads": float(self.n_threads),
        }


def summarize_reclaimable(
    dataset_or_groups: TimingDataset | GroupedSamples,
) -> ReclaimableSummary:
    """Average reclaimable time and idle ratio over all process-iterations."""
    if isinstance(dataset_or_groups, TimingDataset):
        grouped = aggregate(dataset_or_groups, AggregationLevel.PROCESS_ITERATION)
    else:
        grouped = dataset_or_groups
    reclaim = reclaimable_time(grouped.values)
    ratios = idle_ratio(grouped.values)
    n_threads = grouped.group_size
    return ReclaimableSummary(
        mean_reclaimable_s=float(np.mean(reclaim)),
        median_reclaimable_s=float(np.median(reclaim)),
        max_reclaimable_s=float(np.max(reclaim)),
        mean_idle_ratio=float(np.mean(ratios)),
        mean_per_thread_idle_s=float(np.mean(reclaim) / n_threads),
        n_groups=grouped.n_groups,
        n_threads=n_threads,
    )


def per_iteration_reclaimable(dataset: TimingDataset) -> Tuple[np.ndarray, np.ndarray]:
    """Per-application-iteration mean reclaimable time and idle ratio.

    Averages the per-process-iteration metrics over trials and processes for
    each application iteration — the trajectory view used by the ablation
    benchmarks.
    """
    grouped = aggregate(dataset, AggregationLevel.PROCESS_ITERATION)
    reclaim = reclaimable_time(grouped.values)
    ratios = idle_ratio(grouped.values)
    iterations = np.array([key[-1] for key in grouped.keys])
    unique = np.unique(iterations)
    mean_reclaim = np.array([reclaim[iterations == it].mean() for it in unique])
    mean_ratio = np.array([ratios[iterations == it].mean() for it in unique])
    return mean_reclaim, mean_ratio
