"""The high-level analysis facade.

:class:`ThreadTimingAnalyzer` ties every analysis of §4 together for one
application's :class:`~repro.core.timing.TimingDataset`:

>>> analyzer = ThreadTimingAnalyzer(dataset)
>>> analyzer.percentile_series()      # Figures 4 / 6 / 8
>>> analyzer.application_histogram()  # Figure 3
>>> analyzer.normality()              # §4.1 / Table 1
>>> analyzer.laggards()               # §4.2 laggard analysis
>>> analyzer.reclaimable()            # §4.2 reclaimable time / idle ratio
>>> analyzer.earlybird()              # Figures 1 / 2 quantified
>>> analyzer.report()                 # everything above in one object
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.aggregation import AggregationLevel, GroupedSamples, aggregate
from repro.core.earlybird import EarlyBirdModel
from repro.core.laggard import (
    DEFAULT_LAGGARD_THRESHOLD_S,
    DEFAULT_WIDE_IQR_S,
    IterationClass,
    LaggardAnalysis,
    analyze_laggards,
)
from repro.core.normality import NormalityStudy
from repro.core.reclaimable import ReclaimableSummary, summarize_reclaimable
from repro.core.report import FeasibilityReport
from repro.core.timing import TimingDataset
from repro.stats.histogram import FixedWidthHistogram, fixed_width_histogram
from repro.stats.percentiles import DEFAULT_PERCENTILES, PercentileSeries


class ThreadTimingAnalyzer:
    """Per-application analysis driver.

    Parameters
    ----------
    dataset:
        The application's timing dataset (dense).
    laggard_threshold_s:
        Laggard definition, 1 ms in the paper.
    wide_iqr_s:
        IQR above which a process-iteration counts as a "wide" distribution.
    alpha:
        Significance level of the normality battery.
    earlybird_model:
        Model used for the feasibility quantification; a default Omni-Path /
        8 MiB model is created if omitted.
    """

    def __init__(
        self,
        dataset: TimingDataset,
        *,
        laggard_threshold_s: float = DEFAULT_LAGGARD_THRESHOLD_S,
        wide_iqr_s: float = DEFAULT_WIDE_IQR_S,
        alpha: float = 0.05,
        earlybird_model: Optional[EarlyBirdModel] = None,
    ) -> None:
        self.dataset = dataset
        self.laggard_threshold_s = laggard_threshold_s
        self.wide_iqr_s = wide_iqr_s
        self.alpha = alpha
        self.earlybird_model = (
            earlybird_model if earlybird_model is not None else EarlyBirdModel()
        )
        self._grouped: Dict[AggregationLevel, GroupedSamples] = {}
        self._normality: Optional[NormalityStudy] = None
        self._laggards: Optional[LaggardAnalysis] = None
        self._reclaimable: Optional[ReclaimableSummary] = None
        self._earlybird_summary: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # cached building blocks
    # ------------------------------------------------------------------
    def grouped(self, level: AggregationLevel | str) -> GroupedSamples:
        """Samples grouped at one of the paper's aggregation levels (cached)."""
        if isinstance(level, str):
            level = AggregationLevel.from_name(level)
        if level not in self._grouped:
            self._grouped[level] = aggregate(self.dataset, level)
        return self._grouped[level]

    def normality(self) -> NormalityStudy:
        """§4.1 normality study (lazy)."""
        if self._normality is None:
            self._normality = NormalityStudy(self.dataset, alpha=self.alpha)
        return self._normality

    def laggards(self) -> LaggardAnalysis:
        """§4.2 laggard analysis (lazy)."""
        if self._laggards is None:
            self._laggards = analyze_laggards(
                self.grouped(AggregationLevel.PROCESS_ITERATION),
                threshold_s=self.laggard_threshold_s,
                wide_iqr_s=self.wide_iqr_s,
            )
        return self._laggards

    def reclaimable(self) -> ReclaimableSummary:
        """§4.2 reclaimable time / idle ratio summary (lazy)."""
        if self._reclaimable is None:
            self._reclaimable = summarize_reclaimable(
                self.grouped(AggregationLevel.PROCESS_ITERATION)
            )
        return self._reclaimable

    # ------------------------------------------------------------------
    # figure-shaped products
    # ------------------------------------------------------------------
    def percentile_series(
        self, percentiles=DEFAULT_PERCENTILES
    ) -> PercentileSeries:
        """Per-iteration percentile trajectories in ms (Figures 4 / 6 / 8)."""
        per_iteration = self.grouped(AggregationLevel.APPLICATION_ITERATION)
        return PercentileSeries.from_samples(
            per_iteration.values_ms(), percentiles, unit="ms"
        )

    def application_histogram(self, bin_width_s: float = 10.0e-6) -> FixedWidthHistogram:
        """Application-level arrival histogram (Figure 3; default 10 µs bins)."""
        return fixed_width_histogram(
            self.dataset.compute_times_s, bin_width_s, unit="s"
        )

    def process_iteration_histogram(
        self, key: Tuple[int, int, int], bin_width_s: float = 50.0e-6
    ) -> FixedWidthHistogram:
        """Histogram of one process-iteration (Figures 5 / 7 / 9)."""
        grouped = self.grouped(AggregationLevel.PROCESS_ITERATION)
        return fixed_width_histogram(grouped.group(key), bin_width_s, unit="s")

    def exemplar_histogram(
        self, iteration_class: IterationClass, bin_width_s: float = 50.0e-6
    ) -> Optional[FixedWidthHistogram]:
        """Histogram of the exemplar process-iteration of one class."""
        key = self.laggards().exemplar(iteration_class)
        if key is None:
            return None
        return self.process_iteration_histogram(key, bin_width_s)

    # ------------------------------------------------------------------
    # early-bird quantification
    # ------------------------------------------------------------------
    def earlybird(self, max_groups: int = 200) -> Dict[str, float]:
        """Mean early-bird gain over a deterministic sample of process-iterations.

        Evaluating all 16 000 groups is unnecessary for a mean; a strided
        subset of ``max_groups`` groups is used (deterministic, no RNG).
        """
        if self._earlybird_summary is None:
            grouped = self.grouped(AggregationLevel.PROCESS_ITERATION)
            n = grouped.n_groups
            stride = max(n // max_groups, 1)
            subset = grouped.values[::stride]
            results = self.earlybird_model.evaluate_groups(subset)
            self._earlybird_summary = {
                "mean_improvement_s": float(np.mean(results["improvement_s"])),
                "mean_speedup": float(np.mean(results["speedup"])),
                "mean_hidden_s": float(np.mean(results["hidden_s"])),
                "mean_potential_overlap_s": float(
                    np.mean(results["potential_overlap_s"])
                ),
                "groups_evaluated": float(len(subset)),
            }
        return self._earlybird_summary

    # ------------------------------------------------------------------
    def report(self, include_earlybird: bool = True) -> FeasibilityReport:
        """Produce the full per-application feasibility report."""
        series = self.percentile_series()
        laggards = self.laggards()
        reclaimable = self.reclaimable()
        normality = self.normality()
        iqr_stats = series.iqr_summary()
        earlybird = self.earlybird() if include_earlybird else None
        return FeasibilityReport(
            application=self.dataset.application,
            n_samples=self.dataset.n_samples,
            n_trials=self.dataset.n_trials,
            n_processes=self.dataset.n_processes,
            n_iterations=self.dataset.n_iterations,
            n_threads=self.dataset.n_threads,
            mean_median_arrival_ms=series.mean_median(),
            mean_iqr_ms=iqr_stats["mean"],
            max_iqr_ms=iqr_stats["max"],
            skew_direction=series.skew_direction(),
            laggard_fraction=laggards.laggard_fraction,
            laggard_threshold_ms=self.laggard_threshold_s * 1e3,
            class_fractions={
                cls.value: laggards.class_fraction(cls) for cls in IterationClass
            },
            mean_reclaimable_ms=reclaimable.mean_reclaimable_s * 1e3,
            mean_idle_ratio=reclaimable.mean_idle_ratio,
            application_level_rejected=normality.application_rejects_normality(),
            process_iteration_pass_rates=normality.process_iteration_pass_rates(),
            earlybird_mean_improvement_us=(
                earlybird["mean_improvement_s"] * 1e6 if earlybird else 0.0
            ),
            earlybird_mean_speedup=(
                earlybird["mean_speedup"] if earlybird else 1.0
            ),
            earlybird_buffer_bytes=(
                self.earlybird_model.buffer_bytes if earlybird else 0
            ),
            extras={"metadata": dict(self.dataset.metadata)},
        )
