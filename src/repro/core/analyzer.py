"""The high-level analysis facade.

:class:`ThreadTimingAnalyzer` ties every analysis of §4 together for one
application's :class:`~repro.core.timing.TimingDataset`:

>>> analyzer = ThreadTimingAnalyzer(dataset)
>>> analyzer.percentile_series()      # Figures 4 / 6 / 8
>>> analyzer.application_histogram()  # Figure 3
>>> analyzer.normality()              # §4.1 / Table 1
>>> analyzer.laggards()               # §4.2 laggard analysis
>>> analyzer.reclaimable()            # §4.2 reclaimable time / idle ratio
>>> analyzer.earlybird()              # Figures 1 / 2 quantified
>>> analyzer.report()                 # everything above in one object

Since the analysis layer was refactored onto the streaming engine
(:mod:`repro.analysis`), this class is a thin compatibility facade: each
product runs the corresponding registered analysis pass in exact mode over
the dataset wrapped as a single shard, and :meth:`report` is assembled by
the same :func:`~repro.analysis.report.assemble_feasibility_report` the
shard-streaming path uses — which is what makes
``CampaignSession.analyze(analyses=...)`` bit-identical to this in-memory
path (pinned-digest tests in ``tests/integration/test_streaming_analysis.py``).
Campaign-scale consumers should prefer the streaming engine; this facade
remains for interactive use on materialised datasets.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.aggregation import AggregationLevel, GroupedSamples, aggregate
from repro.core.earlybird import EarlyBirdModel
from repro.core.laggard import (
    DEFAULT_LAGGARD_THRESHOLD_S,
    DEFAULT_WIDE_IQR_S,
    IterationClass,
    LaggardAnalysis,
)
from repro.core.normality import NormalityStudy
from repro.core.reclaimable import ReclaimableSummary
from repro.core.report import FeasibilityReport
from repro.core.timing import TimingDataset, TimingShard
from repro.stats.histogram import FixedWidthHistogram, fixed_width_histogram
from repro.stats.percentiles import DEFAULT_PERCENTILES, PercentileSeries


class ThreadTimingAnalyzer:
    """Per-application analysis driver (facade over the analysis passes).

    Parameters
    ----------
    dataset:
        The application's timing dataset (dense).
    laggard_threshold_s:
        Laggard definition, 1 ms in the paper.
    wide_iqr_s:
        IQR above which a process-iteration counts as a "wide" distribution.
    alpha:
        Significance level of the normality battery.
    earlybird_model:
        Model used for the feasibility quantification; a default Omni-Path /
        8 MiB model is created if omitted.
    """

    def __init__(
        self,
        dataset: TimingDataset,
        *,
        laggard_threshold_s: float = DEFAULT_LAGGARD_THRESHOLD_S,
        wide_iqr_s: float = DEFAULT_WIDE_IQR_S,
        alpha: float = 0.05,
        earlybird_model: Optional[EarlyBirdModel] = None,
    ) -> None:
        self.dataset = dataset
        self.laggard_threshold_s = laggard_threshold_s
        self.wide_iqr_s = wide_iqr_s
        self.alpha = alpha
        self.earlybird_model = (
            earlybird_model if earlybird_model is not None else EarlyBirdModel()
        )
        self._grouped: Dict[AggregationLevel, GroupedSamples] = {}
        self._normality: Optional[NormalityStudy] = None
        self._products: Dict[str, object] = {}
        self._shard: Optional[TimingShard] = None

    # ------------------------------------------------------------------
    # streaming-engine plumbing
    # ------------------------------------------------------------------
    def _dataset_shard(self) -> TimingShard:
        """The dataset wrapped as a single shard (cached, so all passes
        share one per-shard aggregation memo)."""
        if self._shard is None:
            trial = int(self.dataset.trials[0]) if self.dataset.n_trials else 0
            self._shard = TimingShard.from_dataset(
                self.dataset, trial=trial, process=None
            )
        return self._shard

    def _run_pass(self, analysis_pass):
        """Run one pass in exact mode over the dataset as a single shard."""
        from repro.analysis import AnalysisContext

        context = AnalysisContext.from_dataset(self.dataset, exact=True)
        return analysis_pass.run([self._dataset_shard()], context)

    def _product(self, name: str):
        """Finalized product of one report pass (computed once, cached)."""
        if name not in self._products:
            from repro.analysis import (
                EarlybirdPass,
                LaggardsPass,
                NormalityPass,
                PercentilesPass,
                ReclaimablePass,
            )

            factories = {
                "percentiles": lambda: PercentilesPass(),
                "laggards": lambda: LaggardsPass(
                    threshold_s=self.laggard_threshold_s, wide_iqr_s=self.wide_iqr_s
                ),
                "reclaimable": lambda: ReclaimablePass(),
                "normality": lambda: NormalityPass(alpha=self.alpha),
                "earlybird": lambda: EarlybirdPass(model=self.earlybird_model),
            }
            self._products[name] = self._run_pass(factories[name]())
        return self._products[name]

    # ------------------------------------------------------------------
    # cached building blocks
    # ------------------------------------------------------------------
    def grouped(self, level: AggregationLevel | str) -> GroupedSamples:
        """Samples grouped at one of the paper's aggregation levels (cached)."""
        if isinstance(level, str):
            level = AggregationLevel.from_name(level)
        if level not in self._grouped:
            self._grouped[level] = aggregate(self.dataset, level)
        return self._grouped[level]

    def normality(self) -> NormalityStudy:
        """§4.1 normality study (lazy).

        Returns the full in-memory :class:`NormalityStudy` (all three
        aggregation levels); the report's normality fields come from the
        streaming ``normality`` pass, which agrees bit-for-bit on the levels
        both compute.
        """
        if self._normality is None:
            self._normality = NormalityStudy(self.dataset, alpha=self.alpha)
        return self._normality

    def laggards(self) -> LaggardAnalysis:
        """§4.2 laggard analysis (lazy, via the ``laggards`` pass)."""
        return self._product("laggards").analysis

    def reclaimable(self) -> ReclaimableSummary:
        """§4.2 reclaimable time / idle ratio (via the ``reclaimable`` pass)."""
        return self._product("reclaimable")

    # ------------------------------------------------------------------
    # figure-shaped products
    # ------------------------------------------------------------------
    def percentile_series(
        self, percentiles=DEFAULT_PERCENTILES
    ) -> PercentileSeries:
        """Per-iteration percentile trajectories in ms (Figures 4 / 6 / 8)."""
        if tuple(percentiles) == tuple(DEFAULT_PERCENTILES):
            return self._product("percentiles")
        from repro.analysis import PercentilesPass

        return self._run_pass(PercentilesPass(tuple(percentiles)))

    def application_histogram(self, bin_width_s: float = 10.0e-6) -> FixedWidthHistogram:
        """Application-level arrival histogram (Figure 3; default 10 µs bins)."""
        from repro.analysis import HistogramPass

        return self._run_pass(HistogramPass(bin_width_s))

    def process_iteration_histogram(
        self, key: Tuple[int, int, int], bin_width_s: float = 50.0e-6
    ) -> FixedWidthHistogram:
        """Histogram of one process-iteration (Figures 5 / 7 / 9)."""
        grouped = self.grouped(AggregationLevel.PROCESS_ITERATION)
        return fixed_width_histogram(grouped.group(key), bin_width_s, unit="s")

    def exemplar_histogram(
        self, iteration_class: IterationClass, bin_width_s: float = 50.0e-6
    ) -> Optional[FixedWidthHistogram]:
        """Histogram of the exemplar process-iteration of one class."""
        key = self.laggards().exemplar(iteration_class)
        if key is None:
            return None
        return self.process_iteration_histogram(key, bin_width_s)

    # ------------------------------------------------------------------
    # early-bird quantification
    # ------------------------------------------------------------------
    def earlybird(self, max_groups: Optional[int] = None) -> Dict[str, float]:
        """Mean early-bird gain over a deterministic sample of process-iterations.

        Evaluating all 16 000 groups is unnecessary for a mean; a strided
        subset of ``max_groups`` groups is used (deterministic, no RNG;
        default: the earlybird pass's default subset size).
        """
        if max_groups is None:
            return self._product("earlybird")
        from repro.analysis import EarlybirdPass

        return self._run_pass(
            EarlybirdPass(model=self.earlybird_model, max_groups=max_groups)
        )

    # ------------------------------------------------------------------
    def report(self, include_earlybird: bool = True) -> FeasibilityReport:
        """Produce the full per-application feasibility report."""
        from repro.analysis import (
            REPORT_ANALYSES,
            AnalysisContext,
            assemble_feasibility_report,
        )

        products = {name: self._product(name) for name in REPORT_ANALYSES}
        if include_earlybird:
            products["earlybird"] = self._product("earlybird")
        context = AnalysisContext.from_dataset(self.dataset, exact=True)
        return assemble_feasibility_report(
            products, context, include_earlybird=include_earlybird
        )
