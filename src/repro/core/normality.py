"""Normality analysis at the paper's three aggregation levels (§4.1, Table 1).

:class:`NormalityStudy` is the per-application driver: it aggregates a timing
dataset at each level, runs the three-test battery
(:class:`repro.stats.battery.NormalityBattery`) and exposes the results the
way the paper reports them:

* application level — a single reject / fail-to-reject verdict per test;
* application-iteration level — how many of the 200 iterations pass each test;
* process-iteration level — the Table 1 percentages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.aggregation import AggregationLevel, GroupedSamples, aggregate
from repro.core.timing import TimingDataset
from repro.stats.battery import TEST_LABELS, TEST_NAMES, NormalityBattery, NormalityReport


def stratified_subsample(values: np.ndarray, limit: int) -> np.ndarray:
    """Deterministic stratified subsample along the last axis.

    Sorts, then takes ``limit`` evenly strided order statistics — therefore
    independent of the input order, which is what makes the application-level
    normality verdict identical between the in-memory path (dense row order)
    and the shard-streaming path (shards concatenated in merge order).
    """
    n = values.shape[-1]
    if n <= limit:
        return values
    stride = n / limit
    idx = np.floor(np.arange(limit) * stride).astype(np.int64)
    return np.sort(values, axis=-1)[..., idx]


@dataclass
class LevelResult:
    """Battery outcome at one aggregation level."""

    level: AggregationLevel
    report: NormalityReport
    keys: List[tuple]

    @property
    def pass_rates(self) -> Dict[str, float]:
        return self.report.pass_rates()

    def passing_keys(self, test: str) -> List[tuple]:
        """Keys of the groups that pass ``test`` (e.g. the eight MiniQMC
        application iterations that pass D'Agostino in the paper)."""
        mask = self.report.outcomes[test].passed
        return [key for key, ok in zip(self.keys, np.atleast_1d(mask)) if ok]

    def n_passing(self, test: str) -> int:
        return int(np.sum(self.report.outcomes[test].passed))


class NormalityStudy:
    """Run the §4.1 normality analysis on one application's dataset.

    Parameters
    ----------
    dataset:
        The application's timing dataset.
    alpha:
        Significance level (5 % in the paper).
    max_application_samples:
        The application-level group can contain hundreds of thousands of
        samples; Shapiro–Wilk's approximation is only defined to n = 5000, so
        the application-level battery tests a deterministic stratified
        subsample of at most this many values (the paper's conclusion —
        rejection — is insensitive to this: rejection only becomes *easier*
        with more samples).
    """

    def __init__(
        self,
        dataset: TimingDataset,
        *,
        alpha: float = 0.05,
        max_application_samples: int = 5000,
    ) -> None:
        self.dataset = dataset
        self.alpha = alpha
        self.max_application_samples = max_application_samples
        self.battery = NormalityBattery(alpha=alpha)
        self._results: Dict[AggregationLevel, LevelResult] = {}

    # ------------------------------------------------------------------
    def _subsample(self, values: np.ndarray, limit: int) -> np.ndarray:
        """Deterministic stratified subsample along the last axis."""
        return stratified_subsample(values, limit)

    def level_result(self, level: AggregationLevel | str) -> LevelResult:
        """Battery outcome at ``level`` (computed lazily, cached)."""
        if isinstance(level, str):
            level = AggregationLevel.from_name(level)
        if level not in self._results:
            grouped = aggregate(self.dataset, level)
            values = grouped.values
            if level is AggregationLevel.APPLICATION:
                values = self._subsample(values, self.max_application_samples)
            report = self.battery.run(values)
            self._results[level] = LevelResult(
                level=level, report=report, keys=grouped.keys
            )
        return self._results[level]

    # ------------------------------------------------------------------
    # paper-facing accessors
    # ------------------------------------------------------------------
    def application_rejects_normality(self) -> bool:
        """§4.1: does every test reject normality at the application level?"""
        return self.level_result(AggregationLevel.APPLICATION).report.rejected_all()

    def application_iteration_pass_counts(self) -> Dict[str, int]:
        """Number of application iterations passing each test."""
        result = self.level_result(AggregationLevel.APPLICATION_ITERATION)
        return {name: result.n_passing(name) for name in TEST_NAMES}

    def process_iteration_pass_rates(self) -> Dict[str, float]:
        """Fraction of process-iterations passing each test (Table 1 row)."""
        result = self.level_result(AggregationLevel.PROCESS_ITERATION)
        return result.pass_rates

    def table1_row(self, label: Optional[str] = None) -> Dict[str, object]:
        """One row of Table 1 (percentages)."""
        result = self.level_result(AggregationLevel.PROCESS_ITERATION)
        return result.report.table_row(label or self.dataset.application)

    def summary(self) -> str:
        """Readable multi-level summary."""
        lines = [f"normality study for {self.dataset.application!r} (alpha={self.alpha})"]
        app = self.level_result(AggregationLevel.APPLICATION)
        verdict = "rejected" if app.report.rejected_all() else "not uniformly rejected"
        lines.append(f"  application level: normality {verdict}")
        app_iter = self.level_result(AggregationLevel.APPLICATION_ITERATION)
        for name in TEST_NAMES:
            lines.append(
                f"  application-iteration level, {TEST_LABELS[name]}: "
                f"{app_iter.n_passing(name)}/{app_iter.report.n_groups} iterations pass"
            )
        proc = self.level_result(AggregationLevel.PROCESS_ITERATION)
        for name in TEST_NAMES:
            lines.append(
                f"  process-iteration level, {TEST_LABELS[name]}: "
                f"{100 * proc.pass_rates[name]:.1f}% pass"
            )
        return "\n".join(lines)
