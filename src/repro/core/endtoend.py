"""End-to-end application projection (the §5 "restructured application" question).

The paper measures *extant* fork/join idle time and argues that a restructured
application could convert it into communication/computation overlap.  This
module closes that loop quantitatively: given a measured timing dataset, a
per-iteration communication volume and a delivery strategy, it projects the
per-iteration critical path of a bulk-synchronous application

    iteration time = (last thread's arrival) + (communication exposed after it)

and compares strategies over the whole campaign.  The result is the projected
application-level speedup of adopting early-bird delivery — the number an
application developer would want before committing to the restructuring the
paper describes as "significant changes to the applications".

The projection is deliberately conservative: it charges the full compute
critical path (no fusion of fork/join loops) and only credits communication
that a strategy moves off the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.aggregation import AggregationLevel, aggregate
from repro.core.strategies import (
    BinnedStrategy,
    BulkStrategy,
    DeliveryStrategy,
    FineGrainedStrategy,
    TimeoutStrategy,
)
from repro.core.timing import TimingDataset
from repro.mpi.network import NetworkModel, omni_path


@dataclass(frozen=True)
class StrategyProjection:
    """Projected per-iteration and whole-run cost of one delivery strategy."""

    strategy: str
    mean_iteration_s: float
    total_time_s: float
    mean_exposed_comm_s: float
    mean_messages: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "strategy": self.strategy,
            "mean_iteration_ms": self.mean_iteration_s * 1e3,
            "total_time_s": self.total_time_s,
            "mean_exposed_comm_us": self.mean_exposed_comm_s * 1e6,
            "mean_messages": self.mean_messages,
        }


@dataclass
class EndToEndProjection:
    """Projections for several strategies over one application's dataset."""

    application: str
    buffer_bytes: int
    n_iterations_evaluated: int
    projections: Dict[str, StrategyProjection] = field(default_factory=dict)

    def speedup_over_bulk(self) -> Dict[str, float]:
        """Projected whole-application speedup of each strategy vs bulk."""
        if "bulk" not in self.projections:
            raise KeyError("projection does not include the bulk baseline")
        bulk_total = self.projections["bulk"].total_time_s
        return {
            name: bulk_total / projection.total_time_s
            for name, projection in self.projections.items()
        }

    def communication_reduction(self) -> Dict[str, float]:
        """Fraction of the bulk strategy's exposed communication eliminated."""
        bulk = self.projections["bulk"].mean_exposed_comm_s
        if bulk <= 0:
            return {name: 0.0 for name in self.projections}
        return {
            name: 1.0 - projection.mean_exposed_comm_s / bulk
            for name, projection in self.projections.items()
        }

    def best(self) -> StrategyProjection:
        return min(self.projections.values(), key=lambda p: p.total_time_s)

    def table_rows(self) -> list:
        """Rows for :func:`repro.viz.ascii.ascii_table` / CSV export."""
        speedups = self.speedup_over_bulk()
        rows = []
        for name, projection in self.projections.items():
            row = projection.as_dict()
            row["projected_speedup_vs_bulk"] = speedups[name]
            rows.append(row)
        return rows


class EndToEndModel:
    """Project whole-application behaviour from measured arrival vectors.

    Parameters
    ----------
    network:
        Network timing parameters (Omni-Path preset by default).
    buffer_bytes:
        Bytes each process communicates per iteration.
    hops:
        Network hops between communicating ranks.
    strategies:
        Delivery strategies to project; defaults to the §5 set
        (bulk, fine-grained, binned(8), 1 ms timeout).
    post_region_compute_s:
        Serial per-iteration work outside the timed region (integration
        bookkeeping, reductions, ...) added to every strategy identically.
    """

    def __init__(
        self,
        network: Optional[NetworkModel] = None,
        *,
        buffer_bytes: int = 8 * 1024 * 1024,
        hops: int = 2,
        strategies: Optional[Sequence[DeliveryStrategy]] = None,
        post_region_compute_s: float = 0.0,
    ) -> None:
        if buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        if post_region_compute_s < 0:
            raise ValueError("post_region_compute_s must be non-negative")
        self.network = network if network is not None else omni_path()
        self.buffer_bytes = int(buffer_bytes)
        self.hops = hops
        self.post_region_compute_s = post_region_compute_s
        self.strategies = (
            list(strategies)
            if strategies is not None
            else [
                BulkStrategy(),
                FineGrainedStrategy(),
                BinnedStrategy(8),
                TimeoutStrategy(1.0e-3),
            ]
        )
        if not any(s.name == "bulk" for s in self.strategies):
            self.strategies.insert(0, BulkStrategy())

    # ------------------------------------------------------------------
    def project_dataset(
        self, dataset: TimingDataset, *, max_iterations: int = 400
    ) -> EndToEndProjection:
        """Project every strategy over (a deterministic sample of) the dataset.

        Parameters
        ----------
        dataset:
            The application's measured timing dataset.
        max_iterations:
            Evaluate at most this many process-iterations (strided,
            deterministic) — enough for stable means without evaluating all
            16 000 paper-scale groups.
        """
        grouped = aggregate(dataset, AggregationLevel.PROCESS_ITERATION)
        stride = max(grouped.n_groups // max_iterations, 1)
        arrivals_matrix = grouped.values[::stride]
        n_evaluated = arrivals_matrix.shape[0]

        projection = EndToEndProjection(
            application=dataset.application,
            buffer_bytes=self.buffer_bytes,
            n_iterations_evaluated=n_evaluated,
        )
        for strategy in self.strategies:
            iteration_times = np.empty(n_evaluated)
            exposed = np.empty(n_evaluated)
            messages = np.empty(n_evaluated)
            for idx in range(n_evaluated):
                arrivals = arrivals_matrix[idx]
                outcome = strategy.evaluate(
                    arrivals,
                    buffer_bytes=self.buffer_bytes,
                    network=self.network,
                    hops=self.hops,
                )
                compute_cp = float(arrivals.max())
                iteration_times[idx] = (
                    compute_cp
                    + outcome.exposed_after_compute_s
                    + self.post_region_compute_s
                )
                exposed[idx] = outcome.exposed_after_compute_s
                messages[idx] = outcome.n_messages
            projection.projections[strategy.name] = StrategyProjection(
                strategy=strategy.name,
                mean_iteration_s=float(iteration_times.mean()),
                total_time_s=float(iteration_times.sum()) * stride,
                mean_exposed_comm_s=float(exposed.mean()),
                mean_messages=float(messages.mean()),
            )
        return projection

    # ------------------------------------------------------------------
    def project_applications(
        self, datasets: Dict[str, TimingDataset], *, max_iterations: int = 200
    ) -> Dict[str, EndToEndProjection]:
        """Project all strategies for several applications."""
        return {
            name: self.project_dataset(dataset, max_iterations=max_iterations)
            for name, dataset in datasets.items()
        }
