"""The three aggregation levels of §4.1.

The paper tests normality of thread arrival times when aggregated at:

1. **Application level** — all samples of all trials, processes and
   iterations pooled into one group (768 000 samples at paper scale).
2. **Application-iteration level** — one group per application iteration,
   pooling trials, processes and threads (3840 samples per group).
3. **Process-iteration level** — one group per (trial, process, iteration),
   i.e. one thread team's arrival vector (48 samples per group).  This is the
   granularity of Table 1.

:func:`aggregate` turns a :class:`~repro.core.timing.TimingDataset` into a
:class:`GroupedSamples` matrix for any of the three levels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.timing import TimingDataset


class AggregationLevel(enum.Enum):
    """The paper's three groupings of thread arrival samples."""

    APPLICATION = "application"
    APPLICATION_ITERATION = "application_iteration"
    PROCESS_ITERATION = "process_iteration"

    @classmethod
    def from_name(cls, name: str) -> "AggregationLevel":
        """Parse a level from a string (accepts the enum value or name)."""
        text = name.strip().lower()
        for level in cls:
            if text in (level.value, level.name.lower()):
                return level
        raise ValueError(f"unknown aggregation level {name!r}")


@dataclass
class GroupedSamples:
    """Samples arranged as equal-size groups.

    Attributes
    ----------
    level:
        The aggregation level that produced the groups.
    keys:
        One identifying tuple per group — ``()`` for the application level,
        ``(iteration,)`` for application-iteration groups and
        ``(trial, process, iteration)`` for process-iteration groups.
    values:
        Matrix of shape ``(n_groups, group_size)`` of compute times in
        **seconds**.
    """

    level: AggregationLevel
    keys: List[Tuple[int, ...]]
    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 2:
            raise ValueError("values must be a 2-D (n_groups, group_size) matrix")
        if len(self.keys) != self.values.shape[0]:
            raise ValueError("keys length must equal the number of groups")

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return self.values.shape[0]

    @property
    def group_size(self) -> int:
        return self.values.shape[1]

    def values_ms(self) -> np.ndarray:
        """Group matrix in milliseconds (the figures' unit)."""
        return self.values * 1.0e3

    def group(self, key: Tuple[int, ...]) -> np.ndarray:
        """Samples of the group identified by ``key``."""
        try:
            idx = self.keys.index(tuple(key))
        except ValueError as exc:
            raise KeyError(f"no group with key {key}") from exc
        return self.values[idx]

    def key_index(self) -> Dict[Tuple[int, ...], int]:
        """Mapping key → row index (computed once for repeated lookups)."""
        return {key: idx for idx, key in enumerate(self.keys)}

    def iteration_of(self, row: int) -> int:
        """Application-iteration index of group ``row`` (last key element)."""
        key = self.keys[row]
        if not key:
            raise ValueError("application-level groups have no iteration key")
        return int(key[-1])


def aggregate(
    dataset: TimingDataset, level: AggregationLevel | str
) -> GroupedSamples:
    """Group a dataset's compute times at one of the paper's three levels.

    The dataset must be *dense* (every trial/process/iteration/thread
    combination present exactly once), which every campaign produced by this
    package is; sparse data would make the fixed-width group matrix ambiguous.
    """
    if isinstance(level, str):
        level = AggregationLevel.from_name(level)
    if not dataset.is_dense():
        raise ValueError("aggregation requires a dense dataset")
    dense = dataset.to_dense()  # (trials, processes, iterations, threads)
    n_trials, n_processes, n_iterations, n_threads = dense.shape
    trials = dataset.trials
    processes = dataset.processes
    iterations = dataset.iterations

    if level is AggregationLevel.APPLICATION:
        values = dense.reshape(1, -1)
        keys: List[Tuple[int, ...]] = [()]
    elif level is AggregationLevel.APPLICATION_ITERATION:
        # (iterations, trials * processes * threads)
        values = dense.transpose(2, 0, 1, 3).reshape(n_iterations, -1)
        keys = [(int(it),) for it in iterations]
    elif level is AggregationLevel.PROCESS_ITERATION:
        values = dense.reshape(n_trials * n_processes * n_iterations, n_threads)
        keys = [
            (int(trials[t]), int(processes[p]), int(iterations[i]))
            for t in range(n_trials)
            for p in range(n_processes)
            for i in range(n_iterations)
        ]
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unsupported level {level}")
    return GroupedSamples(level=level, keys=keys, values=values)


def per_iteration_samples(dataset: TimingDataset) -> np.ndarray:
    """Matrix ``(n_iterations, samples_per_iteration)`` (percentile-plot input)."""
    grouped = aggregate(dataset, AggregationLevel.APPLICATION_ITERATION)
    return grouped.values
