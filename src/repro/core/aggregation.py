"""The three aggregation levels of §4.1.

The paper tests normality of thread arrival times when aggregated at:

1. **Application level** — all samples of all trials, processes and
   iterations pooled into one group (768 000 samples at paper scale).
2. **Application-iteration level** — one group per application iteration,
   pooling trials, processes and threads (3840 samples per group).
3. **Process-iteration level** — one group per (trial, process, iteration),
   i.e. one thread team's arrival vector (48 samples per group).  This is the
   granularity of Table 1.

:func:`aggregate` turns a :class:`~repro.core.timing.TimingDataset` into a
:class:`GroupedSamples` matrix for any of the three levels;
:func:`aggregate_shard` does the same for a single
:class:`~repro.core.timing.TimingShard` without materialising a dataset —
the group-by is a vectorised sort/``bincount``/``reshape``, no per-key
Python loop — which is what lets the streaming analysis passes of
:mod:`repro.analysis` consume campaign shards directly.
"""

from __future__ import annotations

import enum
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.core.timing import TimingDataset, TimingShard

# re-exported for the analysis layer: the 2-D scatter-add primitive lives
# next to the schedule batch kernels that are its hottest consumers (and in
# a leaf module, which keeps this package's import graph acyclic)
from repro.openmp.schedule import scatter_add_2d  # noqa: F401


class AggregationLevel(enum.Enum):
    """The paper's three groupings of thread arrival samples."""

    APPLICATION = "application"
    APPLICATION_ITERATION = "application_iteration"
    PROCESS_ITERATION = "process_iteration"

    @classmethod
    def from_name(cls, name: str) -> "AggregationLevel":
        """Parse a level from a string (accepts the enum value or name)."""
        text = name.strip().lower()
        for level in cls:
            if text in (level.value, level.name.lower()):
                return level
        raise ValueError(f"unknown aggregation level {name!r}")


@dataclass
class GroupedSamples:
    """Samples arranged as equal-size groups.

    Attributes
    ----------
    level:
        The aggregation level that produced the groups.
    keys:
        One identifying tuple per group — ``()`` for the application level,
        ``(iteration,)`` for application-iteration groups and
        ``(trial, process, iteration)`` for process-iteration groups.
    values:
        Matrix of shape ``(n_groups, group_size)`` of compute times in
        **seconds**.
    """

    level: AggregationLevel
    keys: List[Tuple[int, ...]]
    values: np.ndarray
    #: lazily built key → row-index mapping (see :meth:`key_index`)
    _index: Optional[Dict[Tuple[int, ...], int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 2:
            raise ValueError("values must be a 2-D (n_groups, group_size) matrix")
        if len(self.keys) != self.values.shape[0]:
            raise ValueError("keys length must equal the number of groups")

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return self.values.shape[0]

    @property
    def group_size(self) -> int:
        return self.values.shape[1]

    def values_ms(self) -> np.ndarray:
        """Group matrix in milliseconds (the figures' unit)."""
        return self.values * 1.0e3

    def group(self, key: Tuple[int, ...]) -> np.ndarray:
        """Samples of the group identified by ``key`` (O(1) after the first
        lookup builds the key index)."""
        try:
            idx = self.key_index()[tuple(key)]
        except KeyError as exc:
            raise KeyError(f"no group with key {key}") from exc
        return self.values[idx]

    def key_index(self) -> Dict[Tuple[int, ...], int]:
        """Mapping key → row index (built lazily once, then cached)."""
        if self._index is None:
            self._index = {key: idx for idx, key in enumerate(self.keys)}
        return self._index

    def iteration_of(self, row: int) -> int:
        """Application-iteration index of group ``row`` (last key element)."""
        key = self.keys[row]
        if not key:
            raise ValueError("application-level groups have no iteration key")
        return int(key[-1])


def aggregate(
    dataset: TimingDataset, level: AggregationLevel | str
) -> GroupedSamples:
    """Group a dataset's compute times at one of the paper's three levels.

    The dataset must be *dense* (every trial/process/iteration/thread
    combination present exactly once), which every campaign produced by this
    package is; sparse data would make the fixed-width group matrix ambiguous.
    """
    if isinstance(level, str):
        level = AggregationLevel.from_name(level)
    if not dataset.is_dense():
        raise ValueError("aggregation requires a dense dataset")
    dense = dataset.to_dense()  # (trials, processes, iterations, threads)
    n_trials, n_processes, n_iterations, n_threads = dense.shape
    trials = dataset.trials
    processes = dataset.processes
    iterations = dataset.iterations

    if level is AggregationLevel.APPLICATION:
        values = dense.reshape(1, -1)
        keys: List[Tuple[int, ...]] = [()]
    elif level is AggregationLevel.APPLICATION_ITERATION:
        # (iterations, trials * processes * threads)
        values = dense.transpose(2, 0, 1, 3).reshape(n_iterations, -1)
        keys = [(int(it),) for it in iterations]
    elif level is AggregationLevel.PROCESS_ITERATION:
        values = dense.reshape(n_trials * n_processes * n_iterations, n_threads)
        keys = [
            (int(trials[t]), int(processes[p]), int(iterations[i]))
            for t in range(n_trials)
            for p in range(n_processes)
            for i in range(n_iterations)
        ]
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unsupported level {level}")
    return GroupedSamples(level=level, keys=keys, values=values)


# per-shard grouping memo: several analysis passes group the same shard at
# the same level within one accumulate step — the first call pays the
# argsort, the rest hit this cache.  Keyed by object identity and evicted
# when the shard is garbage-collected; long-lived shard holders (e.g. the
# streaming engine folding session-cached shards) release eagerly with
# :func:`release_shard_groups` once a shard's accumulate step is done.
_SHARD_GROUPS: Dict[int, Dict[AggregationLevel, GroupedSamples]] = {}


def release_shard_groups(shard: TimingShard) -> None:
    """Drop a shard's cached groupings (no-op if none are cached).

    The memo otherwise lives as long as the shard object does; callers that
    keep shards around after analysing them (cached campaign results) call
    this to return the grouping matrices immediately.
    """
    _SHARD_GROUPS.pop(id(shard), None)


def aggregate_shard(
    shard: TimingShard, level: AggregationLevel | str
) -> GroupedSamples:
    """Group a single campaign shard's samples at one of the paper's levels.

    The shard-streaming analogue of :func:`aggregate`: instead of scattering
    into a dense 4-D array, the shard's rows are ordered by a composite
    (trial, process, iteration, thread) code — one vectorised ``argsort``
    plus a ``bincount`` size check, no per-key Python loop — and reshaped
    into the ``(n_groups, group_size)`` matrix.  Row order inside each group
    is thread-ascending, exactly matching the dense path, so per-group
    statistics computed from shard aggregation are bit-identical to the
    merged-dataset path.

    Groups are *local to the shard*: a (trial, process) shard yields one
    process-iteration group per iteration, and per-iteration groups covering
    only that shard's samples (the streaming passes merge those partials
    across shards).
    """
    if isinstance(level, str):
        level = AggregationLevel.from_name(level)
    cached = _SHARD_GROUPS.get(id(shard))
    if cached is None:
        cached = _SHARD_GROUPS[id(shard)] = {}
        weakref.finalize(shard, _SHARD_GROUPS.pop, id(shard), None)
    if level in cached:
        return cached[level]
    cached[level] = grouped = _aggregate_shard(shard, level)
    return grouped


def _aggregate_shard(shard: TimingShard, level: AggregationLevel) -> GroupedSamples:
    columns: Mapping[str, np.ndarray] = shard.columns
    trial = np.asarray(columns["trial"], dtype=np.int64)
    process = np.asarray(columns["process"], dtype=np.int64)
    iteration = np.asarray(columns["iteration"], dtype=np.int64)
    thread = np.asarray(columns["thread"], dtype=np.int64)
    values = np.asarray(columns["compute_time_s"], dtype=np.float64)

    if level is AggregationLevel.APPLICATION:
        key_columns: Tuple[np.ndarray, ...] = ()
        minor_columns: Tuple[np.ndarray, ...] = (trial, process, iteration, thread)
    elif level is AggregationLevel.APPLICATION_ITERATION:
        key_columns = (iteration,)
        minor_columns = (trial, process, thread)
    elif level is AggregationLevel.PROCESS_ITERATION:
        key_columns = (trial, process, iteration)
        minor_columns = (thread,)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unsupported level {level}")

    # composite integer code: group key columns (major) then the remaining
    # dense axes (minor), so one argsort lands every group contiguously with
    # rows in the dense path's order
    ordered = (*key_columns, *minor_columns)
    spans = [int(col.max()) + 1 if len(col) else 1 for col in ordered]
    code = np.zeros(len(values), dtype=np.int64)
    for col, span in zip(ordered, spans):
        code = code * span + col
    order = np.argsort(code, kind="stable")

    if not key_columns:
        return GroupedSamples(
            level=level, keys=[()], values=values[order][np.newaxis, :]
        )

    group_code = np.zeros(len(values), dtype=np.int64)
    for col, span in zip(key_columns, spans[: len(key_columns)]):
        group_code = group_code * span + col
    unique_codes, inverse = np.unique(group_code, return_inverse=True)
    sizes = np.bincount(inverse, minlength=len(unique_codes))
    if len(set(sizes.tolist())) != 1:
        raise ValueError(
            "shard groups have unequal sizes; aggregation requires a dense shard"
        )
    group_size = int(sizes[0])
    matrix = values[order].reshape(len(unique_codes), group_size)
    key_starts = order[::group_size]
    keys = [
        tuple(int(col[row]) for col in key_columns) for row in key_starts
    ]
    return GroupedSamples(level=level, keys=keys, values=matrix)


def per_iteration_samples(dataset: TimingDataset) -> np.ndarray:
    """Matrix ``(n_iterations, samples_per_iteration)`` (percentile-plot input)."""
    grouped = aggregate(dataset, AggregationLevel.APPLICATION_ITERATION)
    return grouped.values


class ShardSlice(NamedTuple):
    """Address of one shard's rows inside a multi-shard column block.

    The columnar analysis path ships a chunk of shards as one set of flat
    columns plus one :class:`ShardSlice` per shard; ``start:stop`` delimits
    the shard's rows in every column.  Mirrors the identity attributes of
    :class:`~repro.core.timing.TimingShard` so per-shard partials built from
    a slice carry the same ordering key as shard-streaming partials.
    """

    trial: int
    process: Optional[int]
    start: int
    stop: int

    @property
    def n_samples(self) -> int:
        return self.stop - self.start

    @property
    def sort_key(self) -> Tuple[int, int]:
        """Position in the serial (trial-major) shard order (=
        :attr:`~repro.core.timing.TimingShard.sort_key`)."""
        return (self.trial, -1 if self.process is None else self.process)


def campaign_block_groups(
    columns: Mapping[str, np.ndarray], slices: Sequence[ShardSlice]
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Group a whole column block as one dense reshape, if its layout allows.

    Campaign producers (``record_campaign``, the tensor backend's chunk
    workers, the shard store's group payloads) emit rows in canonical dense
    order: iteration-major, thread-minor, threads ``0..T-1``, iterations
    ascending and identical for every shard.  For such a block the
    process-iteration group-by of *every shard at once* is a single
    ``values.reshape(n_shards, n_iterations, n_threads)`` — no per-shard
    argsort — and, because :func:`aggregate_shard`'s stable composite-code
    argsort is the identity permutation on dense-ordered rows, each
    ``matrix[s]`` is bit-identical to that shard's
    ``aggregate_shard(..., PROCESS_ITERATION).values``.

    Returns ``(matrix, iterations)`` with ``matrix`` of shape
    ``(n_shards, n_iterations, n_threads)`` and ``iterations`` the shared
    ascending iteration ids, or ``None`` when the block is not in canonical
    dense order (the caller falls back to the generic per-shard path).
    """
    n_shards = len(slices)
    if n_shards == 0:
        return None
    values = np.asarray(columns["compute_time_s"], dtype=np.float64)
    iteration = np.asarray(columns["iteration"])
    thread = np.asarray(columns["thread"])
    trial = np.asarray(columns["trial"])
    process = np.asarray(columns["process"])
    size = slices[0].n_samples
    if size <= 0 or n_shards * size != len(values):
        return None
    for index, sl in enumerate(slices):
        if sl.start != index * size or sl.stop != sl.start + size:
            return None
    n_threads = int(thread[:size].max()) + 1 if size else 0
    if n_threads <= 0 or size % n_threads:
        return None
    n_iterations = size // n_threads
    try:
        thread_cube = thread.reshape(n_shards, n_iterations, n_threads)
        iter_cube = iteration.reshape(n_shards, n_iterations, n_threads)
        trial_rows = trial.reshape(n_shards, size)
        process_rows = process.reshape(n_shards, size)
    except ValueError:
        return None
    if not np.array_equal(
        thread_cube, np.broadcast_to(np.arange(n_threads), thread_cube.shape)
    ):
        return None
    iterations = iter_cube[0, :, 0]
    if np.any(np.diff(iterations) <= 0):
        return None
    if not np.array_equal(
        iter_cube, np.broadcast_to(iterations[:, np.newaxis], iter_cube.shape)
    ):
        return None
    slice_trials = np.array([sl.trial for sl in slices])
    slice_procs = np.array(
        [-1 if sl.process is None else sl.process for sl in slices]
    )
    if not np.array_equal(trial_rows, np.broadcast_to(slice_trials[:, np.newaxis], trial_rows.shape)):
        return None
    if not np.array_equal(process_rows, np.broadcast_to(slice_procs[:, np.newaxis], process_rows.shape)):
        return None
    return values.reshape(n_shards, n_iterations, n_threads), iterations
