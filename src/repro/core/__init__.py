"""The paper's contribution: thread-timing instrumentation and analysis.

Layer map (bottom → top):

* :mod:`~repro.core.timing` — :class:`TimingRecord` / :class:`TimingDataset`,
  the columnar store of per-thread region timings (trial, process, iteration,
  thread, enter/exit timestamps, derived compute time).
* :mod:`~repro.core.instrument` — the Listing-1 analogue: record region
  timings from simulated executions or from real Python thread pools.
* :mod:`~repro.core.aggregation` — the three aggregation levels of §4.1
  (application, application-iteration, process-iteration).
* :mod:`~repro.core.normality` — the three-test battery applied per level
  (Table 1 and the §4.1 discussion).
* :mod:`~repro.core.laggard` — laggard-thread detection and iteration
  classification (Figures 5/7, the 22.4 % / 4.8 % laggard rates).
* :mod:`~repro.core.reclaimable` — reclaimable time and idle-ratio metrics.
* :mod:`~repro.core.earlybird` / :mod:`~repro.core.strategies` — the
  early-bird feasibility model: what the measured arrival distributions imply
  for partitioned-communication delivery strategies (Figures 1/2, §5).
* :mod:`~repro.core.analyzer` — :class:`ThreadTimingAnalyzer`, the facade
  that produces a per-application feasibility report.
"""

from repro.core.aggregation import AggregationLevel, GroupedSamples, aggregate
from repro.core.analyzer import ThreadTimingAnalyzer
from repro.core.earlybird import EarlyBirdModel, OverlapWindow
from repro.core.endtoend import EndToEndModel, EndToEndProjection, StrategyProjection
from repro.core.instrument import PythonThreadRegion, RegionInstrumenter
from repro.core.laggard import (
    IterationClass,
    LaggardAnalysis,
    LaggardSummary,
    classify_iterations,
)
from repro.core.normality import NormalityStudy
from repro.core.reclaimable import ReclaimableSummary, idle_ratio, reclaimable_time
from repro.core.report import FeasibilityReport
from repro.core.strategies import (
    BinnedStrategy,
    BulkStrategy,
    DeliveryOutcome,
    DeliveryStrategy,
    FineGrainedStrategy,
    StrategyComparison,
    TimeoutStrategy,
    compare_strategies,
)
from repro.core.timing import TimingDataset, TimingRecord

__all__ = [
    "TimingDataset",
    "TimingRecord",
    "RegionInstrumenter",
    "PythonThreadRegion",
    "AggregationLevel",
    "GroupedSamples",
    "aggregate",
    "NormalityStudy",
    "LaggardAnalysis",
    "LaggardSummary",
    "IterationClass",
    "classify_iterations",
    "reclaimable_time",
    "idle_ratio",
    "ReclaimableSummary",
    "EarlyBirdModel",
    "OverlapWindow",
    "EndToEndModel",
    "EndToEndProjection",
    "StrategyProjection",
    "DeliveryStrategy",
    "BulkStrategy",
    "FineGrainedStrategy",
    "BinnedStrategy",
    "TimeoutStrategy",
    "DeliveryOutcome",
    "StrategyComparison",
    "compare_strategies",
    "ThreadTimingAnalyzer",
    "FeasibilityReport",
]
