"""Per-application feasibility report.

The report collects every headline number the paper's §4/§5 narrative uses
for one application — median arrival, IQR, laggard fraction, reclaimable
time, idle ratio, Table-1 pass rates, and the early-bird model's predicted
gain — plus the resulting qualitative recommendation (the §5 discussion gives
one per application).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.stats.battery import TEST_LABELS, TEST_NAMES


@dataclass
class FeasibilityReport:
    """Everything the paper reports about one application, in one object."""

    application: str
    n_samples: int
    n_trials: int
    n_processes: int
    n_iterations: int
    n_threads: int

    # §4.2 arrival-shape metrics
    mean_median_arrival_ms: float
    mean_iqr_ms: float
    max_iqr_ms: float
    skew_direction: str

    # laggard metrics
    laggard_fraction: float
    laggard_threshold_ms: float
    class_fractions: Dict[str, float]

    # reclaimable time metrics
    mean_reclaimable_ms: float
    mean_idle_ratio: float

    # §4.1 normality metrics
    application_level_rejected: bool
    process_iteration_pass_rates: Dict[str, float]

    # early-bird model outputs
    earlybird_mean_improvement_us: float = 0.0
    earlybird_mean_speedup: float = 1.0
    earlybird_buffer_bytes: int = 0

    # free-form extras (two-phase split for MiniMD, exemplar keys, ...)
    extras: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def recommendation(self) -> str:
        """Qualitative §5-style verdict derived from the measured shape."""
        wide = self.mean_iqr_ms > 2.0
        frequent_laggards = self.laggard_fraction > 0.15
        rare_but_large_laggards = 0.0 < self.laggard_fraction <= 0.15
        if wide:
            return (
                "wide arrival distribution: both binned aggregation and "
                "fine-grained early-bird transmission are expected to pay off"
            )
        if frequent_laggards:
            return (
                "tight distribution with frequent laggards: a timeout-based "
                "flush of ready partitions can reclaim the idle time"
            )
        if rare_but_large_laggards:
            return (
                "tight distribution with rare, high-magnitude laggards: "
                "early-bird gains are limited to few iterations and need a "
                "more sophisticated (adaptive) trigger"
            )
        return (
            "thread arrivals are nearly simultaneous: partitioned early-bird "
            "delivery is unlikely to beat a single bulk transmission"
        )

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary (JSON/CSV-friendly)."""
        payload: Dict[str, object] = {
            "application": self.application,
            "n_samples": self.n_samples,
            "n_trials": self.n_trials,
            "n_processes": self.n_processes,
            "n_iterations": self.n_iterations,
            "n_threads": self.n_threads,
            "mean_median_arrival_ms": self.mean_median_arrival_ms,
            "mean_iqr_ms": self.mean_iqr_ms,
            "max_iqr_ms": self.max_iqr_ms,
            "skew_direction": self.skew_direction,
            "laggard_fraction": self.laggard_fraction,
            "laggard_threshold_ms": self.laggard_threshold_ms,
            "mean_reclaimable_ms": self.mean_reclaimable_ms,
            "mean_idle_ratio": self.mean_idle_ratio,
            "application_level_rejected": self.application_level_rejected,
            "earlybird_mean_improvement_us": self.earlybird_mean_improvement_us,
            "earlybird_mean_speedup": self.earlybird_mean_speedup,
            "earlybird_buffer_bytes": self.earlybird_buffer_bytes,
            "recommendation": self.recommendation,
        }
        for name, rate in self.process_iteration_pass_rates.items():
            payload[f"pass_rate_{name}"] = rate
        for name, value in self.class_fractions.items():
            payload[f"class_{name}"] = value
        return payload

    def summary(self) -> str:
        """Readable multi-line report (what the examples print)."""
        lines = [
            f"== Early-bird feasibility report: {self.application} ==",
            f"  samples                : {self.n_samples} "
            f"({self.n_trials} trials x {self.n_processes} processes x "
            f"{self.n_iterations} iterations x {self.n_threads} threads)",
            f"  mean median arrival    : {self.mean_median_arrival_ms:8.2f} ms",
            f"  mean / max IQR         : {self.mean_iqr_ms:8.2f} / {self.max_iqr_ms:.2f} ms",
            f"  arrival skew           : {self.skew_direction}",
            f"  laggard iterations     : {100 * self.laggard_fraction:8.1f} % "
            f"(threshold {self.laggard_threshold_ms:.1f} ms)",
            f"  mean reclaimable time  : {self.mean_reclaimable_ms:8.2f} ms / iteration",
            f"  mean idle ratio        : {self.mean_idle_ratio:8.4f}",
            "  application-level normality: "
            + ("rejected" if self.application_level_rejected else "not rejected"),
            "  process-iteration normality pass rates:",
        ]
        for name in TEST_NAMES:
            if name in self.process_iteration_pass_rates:
                lines.append(
                    f"    {TEST_LABELS[name]:<17}: "
                    f"{100 * self.process_iteration_pass_rates[name]:6.2f} %"
                )
        if self.earlybird_buffer_bytes:
            lines.extend(
                [
                    f"  early-bird model ({self.earlybird_buffer_bytes / 1e6:.1f} MB buffer):",
                    f"    mean completion gain : {self.earlybird_mean_improvement_us:8.1f} us",
                    f"    mean speedup         : {self.earlybird_mean_speedup:8.3f} x",
                ]
            )
        lines.append(f"  recommendation         : {self.recommendation}")
        return "\n".join(lines)
