"""Parallel sharded campaign execution.

:class:`ShardExecutor` fans a backend's shards out across a
:mod:`concurrent.futures` worker pool.  Every worker rebuilds the campaign's
:class:`~repro.sim.random.RandomStreams` from the root seed and re-derives its
shard's streams *by name*, so the draws are independent of which worker runs
which shard and of completion order — a parallel campaign is bit-identical to
a serial one.

Two pool modes are supported:

* ``"process"`` (default) — a :class:`~concurrent.futures.ProcessPoolExecutor`
  using the cheap ``fork`` start method where available.  This is the mode
  that actually scales the NumPy-light per-iteration Python work across
  cores.
* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; useful
  where processes are unavailable (restricted sandboxes) or for backends
  whose shards release the GIL.

``max_workers <= 1`` (or a single shard) short-circuits to plain serial
execution with no pool overhead.
"""

from __future__ import annotations

import itertools
import multiprocessing
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Type

from repro.core.timing import TimingDataset, TimingShard
from repro.sim.random import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.experiments.backends import CampaignBackend, ShardSpec
    from repro.experiments.config import CampaignConfig
    from repro.io.shard_store import ShardStore

_MODES = ("process", "thread")


def _run_shard_task(
    backend_cls: Type["CampaignBackend"], config: "CampaignConfig", spec: "ShardSpec"
) -> TimingShard:
    """Worker entry point (module-level so process pools can pickle it).

    Receives the backend *class* rather than a registry name: unpickling the
    class in a spawn-started worker imports its defining module, so
    user-registered backends work in process pools on platforms without
    ``fork``.
    """
    return backend_cls().run_shard(config, spec, RandomStreams(config.seed))


def _map_shard_task(
    backend_cls: Type["CampaignBackend"],
    config: "CampaignConfig",
    spec: "ShardSpec",
    mapper,
):
    """Worker entry point for :meth:`ShardExecutor.map_shards`.

    Runs the shard *and* applies ``mapper`` to it inside the worker, so only
    the mapped result (e.g. small analysis-pass partial states) travels back
    to the parent — the shard's sample arrays never cross the process
    boundary.
    """
    return mapper(_run_shard_task(backend_cls, config, spec))


class ShardExecutor:
    """Runs a backend's shards, serially or on a worker pool.

    Parameters
    ----------
    max_workers:
        Pool size; ``None`` defers to ``config.max_workers`` at run time and
        ``1`` forces serial execution.
    mode:
        ``"process"`` or ``"thread"`` (see module docstring).
    """

    def __init__(
        self, max_workers: Optional[int] = None, *, mode: str = "process"
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.max_workers = max_workers
        self.mode = mode

    # ------------------------------------------------------------------
    def _resolve_workers(self, config: "CampaignConfig", n_shards: int) -> int:
        workers = (
            self.max_workers
            if self.max_workers is not None
            else getattr(config, "max_workers", 1) or 1
        )
        return max(1, min(int(workers), n_shards))

    def _make_pool(self, workers: int):
        if self.mode == "thread":
            return ThreadPoolExecutor(max_workers=workers)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = None
        return ProcessPoolExecutor(max_workers=workers, mp_context=context)

    # ------------------------------------------------------------------
    def _iter_mapped(
        self, backend: "CampaignBackend", config: "CampaignConfig", mapper
    ) -> Iterator[tuple]:
        """Shared driver behind :meth:`iter_shards` and :meth:`map_shards`:
        run every shard (applying ``mapper`` where it was produced when one
        is given) and yield ``(spec, result)`` in serial order.

        With a pool, all shards are submitted through a bounded in-flight
        window — keeping the pool saturated (plus slack for head-of-line
        blocking) without retaining every completed result, so a slow
        consumer holds at most ~2*workers results, not the whole campaign —
        and yielded in submission order as they complete.
        """
        specs = backend.shard_specs(config)
        workers = self._resolve_workers(config, len(specs))
        if not getattr(backend, "parallelizable", True):
            if getattr(backend, "chunk_parallel", False) and workers > 1:
                # chunk fan-out: the backend's unit of work is a whole shard
                # chunk, which it folds on its own worker pool and streams
                # back shard by shard in trial-major order (bit-identical to
                # serial — the shard-keyed draw streams guarantee it)
                parallel = backend.iter_shards_parallel(
                    config, workers=workers, mode=self.mode
                )
                for spec, shard in zip(specs, parallel):
                    yield spec, (shard if mapper is None else mapper(shard))
                return
            # the backend's unit of work is the whole campaign and it has no
            # chunk-parallel path, so fanning shards out would re-run it per
            # shard; its iter_shards already streams incrementally
            workers = 1
        if workers <= 1:
            # defer to the backend's own serial driver so overrides of
            # iter_shards (e.g. replaying pre-recorded shards) are honoured
            for spec, shard in zip(specs, backend.iter_shards(config)):
                yield spec, (shard if mapper is None else mapper(shard))
            return
        backend_cls = type(backend)

        def submit(pool, spec):
            if mapper is None:
                return pool.submit(_run_shard_task, backend_cls, config, spec)
            return pool.submit(_map_shard_task, backend_cls, config, spec, mapper)

        with self._make_pool(workers) as pool:
            spec_iter = iter(specs)
            pending = deque(
                (spec, submit(pool, spec))
                for spec in itertools.islice(spec_iter, 2 * workers)
            )
            try:
                while pending:
                    spec, future = pending.popleft()
                    result = future.result()
                    for next_spec in itertools.islice(spec_iter, 1):
                        pending.append((next_spec, submit(pool, next_spec)))
                    yield spec, result
            finally:
                for _, future in pending:
                    future.cancel()

    def iter_shards(
        self,
        backend: "CampaignBackend",
        config: "CampaignConfig",
        *,
        on_shard: Optional[Callable[[TimingShard], None]] = None,
        store: Optional["ShardStore"] = None,
    ) -> Iterator[TimingShard]:
        """Yield the campaign's shards in serial (trial-major) order.

        **Incremental contract**: each shard is yielded as soon as it is
        available — after its own computation, *before* later shards have
        run (pooled execution keeps at most ~``2 * workers`` undelivered
        results in flight).  Consumers that need live progress (the campaign
        service's shard streaming, progress bars) can therefore react
        per-shard while the campaign is still executing; nothing buffers the
        whole campaign.

        ``on_shard`` is invoked in the caller's process with each shard
        immediately before it is yielded — a convenience for driving
        callbacks from consumers like :meth:`run` / :meth:`run_merged` that
        would otherwise swallow the iterator.

        ``store`` (a :class:`~repro.io.shard_store.ShardStore`) receives
        every shard via ``append`` the moment it arrives — the out-of-core
        spill path: with the campaign tensor backend each ``chunk_shards``
        block lands in the store as the chunk completes, so nothing ever
        accumulates a shard list.  When that backend runs chunk-parallel in
        process mode, its workers spill their chunks *directly* into the
        store's on-disk format and the parent only adopts the finished
        files (the shards yielded here are the store's mmap views).  The
        consumer still sees every shard; :meth:`run_to_store` is the
        variant that swallows the iterator.
        """
        if store is not None and not getattr(backend, "parallelizable", True):
            workers = self._resolve_workers(config, len(backend.shard_specs(config)))
            if getattr(backend, "chunk_parallel", False) and workers > 1:
                # the backend handles the spill itself (direct worker->store
                # in process mode, parent-side extend in thread mode)
                for shard in backend.iter_shards_parallel(
                    config, workers=workers, mode=self.mode, store=store
                ):
                    if on_shard is not None:
                        on_shard(shard)
                    yield shard
                return
        for _, shard in self._iter_mapped(backend, config, None):
            if store is not None:
                store.append(shard)
            if on_shard is not None:
                on_shard(shard)
            yield shard

    def map_blocks(
        self, backend: "CampaignBackend", config: "CampaignConfig", mapper
    ) -> Optional[Iterator[list]]:
        """Apply a columnar block mapper chunk by chunk, if the backend can.

        ``mapper(columns, slices)`` receives whole multi-shard column blocks
        (see :meth:`CampaignTensorBackend.map_chunk_blocks`) and its results
        are yielded per chunk in serial (trial-major) order; with a pool the
        mapper runs inside the workers, so per-shard analysis partials are
        the only thing crossing the process boundary.  Returns ``None`` for
        backends without a chunk-block path — callers fall back to
        :meth:`map_shards`.
        """
        map_chunks = getattr(backend, "map_chunk_blocks", None)
        if map_chunks is None:
            return None
        workers = self._resolve_workers(config, len(backend.shard_specs(config)))
        return map_chunks(config, mapper, workers=workers, mode=self.mode)

    def map_shards(
        self, backend: "CampaignBackend", config: "CampaignConfig", mapper
    ) -> Iterator[tuple]:
        """Apply ``mapper`` to every shard, yielding ``(spec, result)`` pairs
        in serial (trial-major) order.

        With a pool, the mapping runs inside the workers
        (:func:`_map_shard_task`), so a mapper that reduces each shard to a
        small summary — the streaming analysis engine's per-pass partial
        states — keeps the parent's memory bounded: shard sample arrays are
        produced, consumed and dropped worker-side.  ``mapper`` must be
        picklable for the process-pool mode.
        """
        return self._iter_mapped(backend, config, mapper)

    def run(
        self,
        backend: "CampaignBackend",
        config: "CampaignConfig",
        *,
        on_shard: Optional[Callable[[TimingShard], None]] = None,
    ) -> List[TimingShard]:
        """All shards of the campaign, ordered.

        ``on_shard`` (if given) observes each shard incrementally, before
        the campaign finishes — see :meth:`iter_shards`.
        """
        return list(self.iter_shards(backend, config, on_shard=on_shard))

    def run_to_store(
        self,
        backend: "CampaignBackend",
        config: "CampaignConfig",
        store: "ShardStore",
        *,
        on_shard: Optional[Callable[[TimingShard], None]] = None,
    ) -> "ShardStore":
        """Spill the whole campaign into ``store`` with bounded memory.

        Drives :meth:`iter_shards` appending each shard as it arrives and
        drops it immediately — peak memory is the executor's in-flight
        window plus the store's spill buffer, independent of campaign size.
        Returns the (flushed, not yet finalized) store.
        """
        for _ in self.iter_shards(backend, config, on_shard=on_shard, store=store):
            pass
        store.flush()
        return store

    def run_merged(
        self,
        backend: "CampaignBackend",
        config: "CampaignConfig",
        *,
        on_shard: Optional[Callable[[TimingShard], None]] = None,
    ) -> TimingDataset:
        """Run all shards and merge them into one dataset."""
        return TimingDataset.merge(
            self.iter_shards(backend, config, on_shard=on_shard),
            metadata=backend.metadata(config),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardExecutor(max_workers={self.max_workers}, mode={self.mode!r})"
