"""Parallel sharded campaign execution.

:class:`ShardExecutor` fans a backend's shards out across a
:mod:`concurrent.futures` worker pool.  Every worker rebuilds the campaign's
:class:`~repro.sim.random.RandomStreams` from the root seed and re-derives its
shard's streams *by name*, so the draws are independent of which worker runs
which shard and of completion order — a parallel campaign is bit-identical to
a serial one.

Two pool modes are supported:

* ``"process"`` (default) — a :class:`~concurrent.futures.ProcessPoolExecutor`
  using the cheap ``fork`` start method where available.  This is the mode
  that actually scales the NumPy-light per-iteration Python work across
  cores.
* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; useful
  where processes are unavailable (restricted sandboxes) or for backends
  whose shards release the GIL.

``max_workers <= 1`` (or a single shard) short-circuits to plain serial
execution with no pool overhead.
"""

from __future__ import annotations

import itertools
import multiprocessing
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterator, List, Optional, Type

from repro.core.timing import TimingDataset, TimingShard
from repro.sim.random import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.experiments.backends import CampaignBackend, ShardSpec
    from repro.experiments.config import CampaignConfig

_MODES = ("process", "thread")


def _run_shard_task(
    backend_cls: Type["CampaignBackend"], config: "CampaignConfig", spec: "ShardSpec"
) -> TimingShard:
    """Worker entry point (module-level so process pools can pickle it).

    Receives the backend *class* rather than a registry name: unpickling the
    class in a spawn-started worker imports its defining module, so
    user-registered backends work in process pools on platforms without
    ``fork``.
    """
    return backend_cls().run_shard(config, spec, RandomStreams(config.seed))


class ShardExecutor:
    """Runs a backend's shards, serially or on a worker pool.

    Parameters
    ----------
    max_workers:
        Pool size; ``None`` defers to ``config.max_workers`` at run time and
        ``1`` forces serial execution.
    mode:
        ``"process"`` or ``"thread"`` (see module docstring).
    """

    def __init__(
        self, max_workers: Optional[int] = None, *, mode: str = "process"
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.max_workers = max_workers
        self.mode = mode

    # ------------------------------------------------------------------
    def _resolve_workers(self, config: "CampaignConfig", n_shards: int) -> int:
        workers = (
            self.max_workers
            if self.max_workers is not None
            else getattr(config, "max_workers", 1) or 1
        )
        return max(1, min(int(workers), n_shards))

    def _make_pool(self, workers: int):
        if self.mode == "thread":
            return ThreadPoolExecutor(max_workers=workers)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = None
        return ProcessPoolExecutor(max_workers=workers, mp_context=context)

    # ------------------------------------------------------------------
    def iter_shards(
        self, backend: "CampaignBackend", config: "CampaignConfig"
    ) -> Iterator[TimingShard]:
        """Yield the campaign's shards in serial (trial-major) order.

        With a pool, all shards are submitted up front and yielded in
        submission order as they complete, so downstream consumers see the
        deterministic serial order while the pool stays saturated.
        """
        specs = backend.shard_specs(config)
        workers = self._resolve_workers(config, len(specs))
        if workers <= 1:
            yield from backend.iter_shards(config)
            return
        backend_cls = type(backend)
        with self._make_pool(workers) as pool:
            # bounded in-flight window: keep the pool saturated (plus slack
            # for head-of-line blocking) without retaining every completed
            # shard — a slow consumer holds at most ~2*workers shards, not
            # the whole campaign
            spec_iter = iter(specs)
            pending = deque(
                pool.submit(_run_shard_task, backend_cls, config, spec)
                for spec in itertools.islice(spec_iter, 2 * workers)
            )
            try:
                while pending:
                    shard = pending.popleft().result()
                    for spec in itertools.islice(spec_iter, 1):
                        pending.append(
                            pool.submit(_run_shard_task, backend_cls, config, spec)
                        )
                    yield shard
            finally:
                for future in pending:
                    future.cancel()

    def run(
        self, backend: "CampaignBackend", config: "CampaignConfig"
    ) -> List[TimingShard]:
        """All shards of the campaign, ordered."""
        return list(self.iter_shards(backend, config))

    def run_merged(
        self, backend: "CampaignBackend", config: "CampaignConfig"
    ) -> TimingDataset:
        """Run all shards and merge them into one dataset."""
        return TimingDataset.merge(
            self.iter_shards(backend, config), metadata=backend.metadata(config)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardExecutor(max_workers={self.max_workers}, mode={self.mode!r})"
