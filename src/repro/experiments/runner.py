"""The ``repro-campaign`` command-line interface (also ``python -m repro``).

Runs the measurement campaign for one or more applications, regenerates the
paper's tables and figures and writes everything (datasets, CSV series, an
ASCII report) to an output directory::

    repro-campaign --scale benchmark --output results/
    repro-campaign --scale paper --apps minife minimd miniqmc --output results-full/

Registered scenarios (machine × noise × application × schedule recipes from
:mod:`repro.scenarios`) are first-class::

    python -m repro --list-scenarios
    python -m repro --scenario manzano-default --scale smoke --output results/
    python -m repro --machine cloudvm --schedule dynamic --apps minife

``--analyses`` switches to the streaming analysis engine: the campaign's
shards are folded through the named registered passes (see
``--list-analyses``) without ever materialising the merged dataset, and the
pass products land in ``analyses_<app>.json``::

    python -m repro --analyses percentiles laggards reclaimable normality
    python -m repro --list-analyses --porcelain

``--out-of-core`` runs the whole pipeline against the spillable shard store
(:mod:`repro.io.shard_store`): shards flush to disk as they are produced,
analyses use the bounded-memory sketch accumulators, and the figure
generators stream memory-mapped views — a campaign far larger than RAM
completes within a fixed budget::

    python -m repro --scale paper --trials 1000 --out-of-core --spill-mb 256

``cache`` manages the shared cache tier (``--stats`` / ``--prune``)::

    python -m repro cache --cache-dir results/cache --stats
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis import REPORT_ANALYSES, analysis_title, available_analyses
from repro.core.analyzer import ThreadTimingAnalyzer
from repro.experiments.backends import available_backends
from repro.experiments.config import CampaignConfig
from repro.experiments.session import CampaignSession
from repro.experiments.figures import (
    figure3_histogram,
    figure5_minife_classes,
    figure7_minimd_classes,
    figure9_miniqmc_histogram,
    percentile_figure,
)
from repro.experiments.tables import (
    minimd_phase_table,
    section4_metrics_table,
    section41_normality_table,
    table1,
)
from repro.io.dataset_io import save_dataset
from repro.scenarios import (
    available_machines,
    available_noise_profiles,
    available_noise_sources,
    available_scenarios,
    get_machine,
    get_scenario,
)
from repro.viz.ascii import ascii_histogram, ascii_percentile_plot, ascii_table
from repro.viz.export import export_histogram_csv, export_percentiles_csv, export_rows_csv

SCALES = {
    "smoke": CampaignConfig.smoke,
    "benchmark": CampaignConfig.benchmark_scale,
    "paper": CampaignConfig.paper_scale,
}


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Reproduce the thread-timing measurement campaign of "
        "'Measuring Thread Timing to Assess the Feasibility of Early-bird "
        "Message Delivery' (ICPP 2023).",
    )
    parser.add_argument(
        "--apps",
        nargs="+",
        default=None,
        help="applications to run (default: all three proxies)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="benchmark",
        help="campaign size preset (default: benchmark)",
    )
    parser.add_argument("--trials", type=int, default=None, help="override trial count")
    parser.add_argument("--processes", type=int, default=None, help="override process count")
    parser.add_argument("--iterations", type=int, default=None, help="override iteration count")
    parser.add_argument("--threads", type=int, default=None, help="override thread count")
    parser.add_argument("--seed", type=int, default=None, help="override the campaign seed")
    parser.add_argument(
        "--backend",
        choices=sorted(available_backends()),
        # None (not "vectorized") so a scenario's own backend pin is only
        # overridden when the flag is passed explicitly
        default=None,
        help="execution backend from the registry (default: the scenario's "
        "backend if one is pinned, else vectorized)",
    )
    parser.add_argument(
        "--max-workers",
        type=_positive_int,
        default=1,
        help="parallel shard workers (default: 1 = serial; results are "
        "bit-identical at any worker count)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="cache campaign datasets here, keyed by a config hash",
    )
    parser.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="cache-tier size budget in MiB; least-recently-used entries "
        "are evicted over budget (default: $REPRO_CACHE_MAX_BYTES)",
    )
    parser.add_argument(
        "--out-of-core",
        action="store_true",
        help="spill campaign shards to an on-disk store as they are "
        "produced and stream every analysis/figure from memory-mapped "
        "views (bounded RAM; implies sketch-mode analyses)",
    )
    parser.add_argument(
        "--spill-mb",
        type=float,
        default=256.0,
        metavar="MB",
        help="with --out-of-core: in-memory shard buffer bound before a "
        "group spills to disk (default: 256)",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="run a registered scenario (machine x noise x app x schedule); "
        "see --list-scenarios",
    )
    parser.add_argument(
        "--machine",
        default=None,
        metavar="NAME",
        help="registered machine preset for non-scenario runs "
        "(default: the paper's manzano)",
    )
    parser.add_argument(
        "--schedule",
        default=None,
        metavar="CLAUSE",
        help="OpenMP schedule clause override ('static', 'dynamic,4', 'guided')",
    )
    parser.add_argument(
        "--analyses",
        nargs="+",
        default=None,
        metavar="NAME",
        help="run the campaign through the streaming analysis engine: fold "
        "shards through these registered passes (see --list-analyses) "
        "without materialising the merged dataset, writing "
        "analyses_<app>.json; 'all' selects every registered pass",
    )
    parser.add_argument(
        "--sketch",
        action="store_true",
        help="with --analyses: use bounded-memory sketch accumulators "
        "instead of the exact (bit-identical) ones",
    )
    parser.add_argument(
        "--list-analyses",
        action="store_true",
        help="print the registered analysis passes and exit",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the registered scenario catalog and exit",
    )
    parser.add_argument(
        "--list-machines",
        action="store_true",
        help="print the registered machine presets and exit",
    )
    parser.add_argument(
        "--list-noise-sources",
        action="store_true",
        help="print the registered noise sources and profiles and exit",
    )
    parser.add_argument(
        "--porcelain",
        action="store_true",
        help="with --list-*: print bare names only, one per line (for scripts "
        "and the CI matrix)",
    )
    parser.add_argument(
        "--no-noise", action="store_true", help="disable the OS-noise model (ablation)"
    )
    parser.add_argument(
        "--output", type=Path, default=Path("results"), help="output directory"
    )
    parser.add_argument(
        "--save-datasets", action="store_true", help="also write the raw .npz datasets"
    )
    return parser


def _configure(args: argparse.Namespace, application: str) -> CampaignConfig:
    if args.scenario is not None:
        # the scenario fixes machine/noise/app/schedule; CLI flags still
        # override campaign dimensions, seed, backend and worker count
        config = get_scenario(args.scenario).campaign_config(
            args.scale,
            trials=args.trials,
            processes=args.processes,
            iterations=args.iterations,
            threads=args.threads,
            seed=args.seed,
            backend=args.backend,
            max_workers=args.max_workers,
        )
    else:
        config = SCALES[args.scale](application=application)
        config = config.scaled(
            trials=args.trials,
            processes=args.processes,
            iterations=args.iterations,
            threads=args.threads,
        )
        # replace() (rather than attribute assignment) re-runs __post_init__,
        # so CLI overrides go through the same validation as constructed
        # configs
        config = replace(
            config,
            seed=args.seed if args.seed is not None else config.seed,
            backend=args.backend if args.backend is not None else config.backend,
            max_workers=args.max_workers,
            machine=(
                get_machine(args.machine) if args.machine is not None else config.machine
            ),
            schedule=args.schedule if args.schedule is not None else config.schedule,
        )
    if args.no_noise:
        config.machine = config.machine.without_noise()
    return config


def _print_catalogs(args: argparse.Namespace) -> None:
    if args.list_analyses:
        for name in available_analyses():
            if args.porcelain:
                print(name)
            else:
                print(f"{name:14s} {analysis_title(name)}")
    if args.list_scenarios:
        for name in available_scenarios():
            if args.porcelain:
                print(name)
            else:
                row = get_scenario(name).describe()
                print(
                    f"{row['name']:24s} machine={row['machine']:10s} "
                    f"app={row['application']:8s} noise={row['noise']:18s} "
                    f"schedule={row['schedule']:14s} "
                    f"backend={row['backend']:18s} {row['description']}"
                )
    if args.list_machines:
        for name in available_machines():
            if args.porcelain:
                print(name)
            else:
                machine = get_machine(name)
                print(
                    f"{name:10s} {machine.n_nodes} node(s) x "
                    f"{machine.sockets_per_node} socket(s) x "
                    f"{machine.cores_per_socket} cores @ "
                    f"{machine.frequency_ghz:.2f} GHz, {machine.memory_gb:.0f} GB"
                )
    if args.list_noise_sources:
        for name in available_noise_sources():
            print(name)
        if not args.porcelain:
            print("profiles: " + ", ".join(available_noise_profiles()))


def _product_payload(product) -> object:
    """JSON-friendly view of one analysis-pass product."""
    from repro.analysis import product_payload

    return product_payload(product)


def _run_streaming_analyses(
    args: argparse.Namespace, applications: Sequence[str], output: Path
) -> int:
    """``--analyses`` mode: stream shards through passes, no merged dataset."""
    analyses = (
        "all" if args.analyses == ["all"] else list(args.analyses)
    )
    report_lines: List[str] = []
    for application in applications:
        config = _configure(args, application)
        started = time.perf_counter()
        session = CampaignSession(config, cache_dir=args.cache_dir)
        results = session.analyze(
            application, analyses=analyses, exact=not args.sketch
        )
        elapsed = time.perf_counter() - started
        mode = "sketch" if args.sketch else "exact"
        print(
            f"[repro-campaign] analysed {application} via streaming passes "
            f"[{', '.join(sorted(results))}] in {elapsed:.1f} s "
            f"({mode} mode, {config.max_workers} worker(s))",
            flush=True,
        )
        payload = {name: _product_payload(results[name]) for name in sorted(results)}
        path = output / f"analyses_{application}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        if all(name in results for name in REPORT_ANALYSES):
            report = results.report(include_earlybird="earlybird" in results)
            report_lines.append("\n" + report.summary())
    if report_lines:
        report = "\n".join(report_lines)
        (output / "report.txt").write_text(report)
        print(report)
    print(f"\n[repro-campaign] wrote streaming analysis products to {output}/")
    return 0


def _write_figures(
    sources: Dict[str, object],
    output: Path,
    report_lines: List[str],
    shards_by_app: Optional[Dict[str, Sequence]] = None,
) -> None:
    """Regenerate the figures from datasets or streaming analysis results.

    With :class:`~repro.analysis.AnalysisResults` sources, the exemplar
    histograms of Figures 5/7/9 are binned straight from the campaign's
    shards (``shards_by_app``) — no merged dataset anywhere.
    """
    from repro.analysis.engine import AnalysisResults

    shards_by_app = shards_by_app or {}
    figure_dir = output / "figures"

    def shards_for(name: str):
        return shards_by_app.get(name)

    for name, source in sources.items():
        fig3 = figure3_histogram(source)
        export_histogram_csv(fig3["histogram"], figure_dir / f"figure3_{name}.csv")
        series_fig = percentile_figure(source, "percentiles")
        export_percentiles_csv(series_fig["series"], figure_dir / f"percentiles_{name}.csv")
        report_lines.append(f"\n--- {name}: application-level histogram (Figure 3) ---")
        report_lines.append(ascii_histogram(fig3["histogram"], max_rows=25))
        report_lines.append(f"\n--- {name}: percentile plot (Figures 4/6/8) ---")
        report_lines.append(ascii_percentile_plot(series_fig["series"]))
        if isinstance(source, AnalysisResults):
            report = source.report(include_earlybird="earlybird" in source)
        else:
            report = ThreadTimingAnalyzer(source).report()
        report_lines.append("\n" + report.summary())
    if "minife" in sources:
        fig5 = figure5_minife_classes(sources["minife"], shards=shards_for("minife"))
        for label in ("no_laggard", "laggard"):
            hist = fig5[f"{label}_histogram"]
            if hist is not None:
                export_histogram_csv(hist, figure_dir / f"figure5_{label}.csv")
    if "minimd" in sources:
        fig7 = figure7_minimd_classes(sources["minimd"], shards=shards_for("minimd"))
        for label in ("initial", "no_laggard", "laggard"):
            hist = fig7.payload.get(f"{label}_histogram")
            if hist is not None:
                export_histogram_csv(hist, figure_dir / f"figure7_{label}.csv")
    if "miniqmc" in sources:
        fig9 = figure9_miniqmc_histogram(
            sources["miniqmc"], shards=shards_for("miniqmc")
        )
        export_histogram_csv(fig9["histogram"], figure_dir / "figure9_miniqmc.csv")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-campaign`` console script."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] in ("serve", "submit"):
        # service subcommands (imported lazily: the flat campaign CLI must
        # not pay for the asyncio service machinery)
        from repro.service.cli import serve_main, submit_main

        dispatch = serve_main if arguments[0] == "serve" else submit_main
        return dispatch(arguments[1:])
    if arguments and arguments[0] == "cache":
        from repro.io.cache_tier import main as cache_main

        return cache_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    if (
        args.list_scenarios
        or args.list_machines
        or args.list_noise_sources
        or args.list_analyses
    ):
        _print_catalogs(args)
        return 0
    if args.scenario is not None:
        # a scenario fixes machine, schedule and application — overriding
        # them silently would mislabel the resulting dataset
        for flag in ("machine", "schedule", "apps"):
            if getattr(args, flag) is not None:
                parser.error(
                    f"--{flag} conflicts with --scenario (the scenario fixes "
                    "machine, schedule and application)"
                )
        applications = [get_scenario(args.scenario).application]
    else:
        applications = args.apps or ["minife", "minimd", "miniqmc"]
    output: Path = args.output
    output.mkdir(parents=True, exist_ok=True)
    if args.out_of_core:
        if args.save_datasets:
            parser.error(
                "--save-datasets conflicts with --out-of-core (materialising "
                "the merged dataset defeats the bounded-RAM contract)"
            )
        if args.cache_dir is None:
            # the spilled stores need a home; keep them with the results
            args.cache_dir = output / "cache"
    if args.analyses is not None:
        if args.save_datasets:
            # the streaming engine never materialises the datasets the flag
            # would save — reject instead of silently dropping it
            parser.error(
                "--save-datasets conflicts with --analyses (the streaming "
                "engine never materialises the merged datasets)"
            )
        return _run_streaming_analyses(args, applications, output)
    # the default path streams: every table/figure below reads the exact-mode
    # analysis products (plus raw shards for the exemplar histograms), and a
    # merged dataset is only materialised when --save-datasets asks for one
    products: Dict[str, object] = {}
    shards_by_app: Dict[str, Sequence] = {}
    report_lines: List[str] = []
    for application in applications:
        config = _configure(args, application)
        started = time.perf_counter()
        workers = f", {config.max_workers} workers" if config.max_workers > 1 else ""
        scenario = f" [scenario {config.scenario}]" if config.scenario else ""
        print(
            f"[repro-campaign] running {application}{scenario}: "
            f"{config.trials} trials x "
            f"{config.processes} processes x {config.iterations} iterations x "
            f"{config.threads} threads on {config.machine.name} "
            f"({config.backend} backend{workers})",
            flush=True,
        )
        cache_max_bytes = (
            int(args.cache_max_mb * 2**20) if args.cache_max_mb is not None else None
        )
        session = CampaignSession(
            config, cache_dir=args.cache_dir, cache_max_bytes=cache_max_bytes
        )
        if args.out_of_core:
            # shards spill to the store as they arrive; analyses run the
            # bounded-memory sketches (exact accumulators buffer samples);
            # figures stream mmap views straight off the store
            result = session.run(
                store=True,
                spill_threshold_bytes=max(1, int(args.spill_mb * 2**20)),
            )
            products[application] = session.analyze(
                application, analyses="all", exact=False
            )
            shards_by_app[application] = result.store
        else:
            result = session.run()
            products[application] = session.analyze(application, analyses="all")
            shards_by_app[application] = result.shards
        elapsed = time.perf_counter() - started
        origin = " (cached)" if result.from_cache else ""
        print(
            f"[repro-campaign]   {config.samples_per_application} samples "
            f"in {elapsed:.1f} s{origin}",
            flush=True,
        )
        if args.save_datasets:
            save_dataset(result.dataset, output / f"dataset_{application}.npz")

    # tables
    table_rows = table1(products)
    export_rows_csv(table_rows, output / "table1.csv")
    metric_rows = section4_metrics_table(products)
    export_rows_csv(metric_rows, output / "section4_metrics.csv")
    report_lines.append("=== Table 1: process-iteration normality pass rates ===")
    report_lines.append(ascii_table(table_rows))
    report_lines.append("\n=== Section 4.2 scalar metrics (paper vs measured) ===")
    report_lines.append(ascii_table(metric_rows))
    if args.out_of_core:
        # the coarse-level table needs per-iteration pass counts, which the
        # sketch-mode normality accumulator does not retain
        report_lines.append(
            "\n=== Section 4.1 coarse-level normality: skipped "
            "(--out-of-core runs sketch-mode analyses) ==="
        )
    else:
        normality_rows = section41_normality_table(products)
        export_rows_csv(normality_rows, output / "section41_normality.csv")
        report_lines.append("\n=== Section 4.1 coarse-level normality ===")
        report_lines.append(ascii_table(normality_rows))
    if "minimd" in products:
        phase_rows = minimd_phase_table(products["minimd"])
        export_rows_csv(phase_rows, output / "minimd_phases.csv")
        report_lines.append("\n=== MiniMD two-phase IQR comparison ===")
        report_lines.append(ascii_table(phase_rows))

    # figures
    _write_figures(products, output, report_lines, shards_by_app=shards_by_app)

    report = "\n".join(report_lines)
    (output / "report.txt").write_text(report)
    print(report)
    print(f"\n[repro-campaign] wrote tables, figures and report to {output}/")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
