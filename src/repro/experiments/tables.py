"""Table generators for the evaluation section.

* :func:`table1` — the paper's Table 1 (process-iteration normality pass
  percentages per application and test), with the paper's values alongside.
* :func:`section4_metrics_table` — the §4.2 scalar metrics (median arrival,
  IQR, laggard fraction, reclaimable time, idle ratio) per application,
  paper vs measured.
* :func:`section41_normality_table` — the §4.1 coarse-level outcomes.

Every generator accepts its per-application sources as either merged
:class:`~repro.core.timing.TimingDataset` objects (the legacy in-memory
path) or streaming :class:`~repro.analysis.AnalysisResults` (exact mode) —
the CLI default path feeds the latter, so no table forces a dataset merge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.engine import AnalysisResults
from repro.core.analyzer import ThreadTimingAnalyzer
from repro.core.timing import TimingDataset
from repro.experiments.paper import SECTION4_METRICS, SECTION41_NORMALITY, TABLE1_PASS_PERCENT
from repro.stats.battery import TEST_LABELS, TEST_NAMES

APP_LABELS = {"minife": "MiniFE", "minimd": "MiniMD", "miniqmc": "MiniQMC"}

#: one application's table source: merged dataset or streaming results
TableSource = Union[TimingDataset, AnalysisResults]


def _label(name: str) -> str:
    return APP_LABELS.get(name, name)


def table1(
    datasets: Dict[str, TableSource], *, include_paper: bool = True
) -> List[Dict[str, object]]:
    """Rows of Table 1: measured pass percentages (and the paper's)."""
    rows: List[Dict[str, object]] = []
    for name, source in datasets.items():
        if isinstance(source, AnalysisResults):
            rates = source["normality"].process_iteration_pass_rates
        else:
            rates = ThreadTimingAnalyzer(source).normality().process_iteration_pass_rates()
        row: Dict[str, object] = {"application": _label(name)}
        for test in TEST_NAMES:
            row[f"{TEST_LABELS[test]} (measured %)"] = 100.0 * rates[test]
            if include_paper and name in TABLE1_PASS_PERCENT:
                row[f"{TEST_LABELS[test]} (paper %)"] = TABLE1_PASS_PERCENT[name][test]
        rows.append(row)
    return rows


def section4_metrics_table(
    datasets: Dict[str, TableSource], *, include_paper: bool = True
) -> List[Dict[str, object]]:
    """Rows of the §4.2 scalar-metric comparison."""
    rows: List[Dict[str, object]] = []
    for name, source in datasets.items():
        if isinstance(source, AnalysisResults):
            report = source.report(include_earlybird=False)
        else:
            report = ThreadTimingAnalyzer(source).report(include_earlybird=False)
        row: Dict[str, object] = {
            "application": _label(name),
            "mean_median_arrival_ms (measured)": report.mean_median_arrival_ms,
            "mean_iqr_ms (measured)": report.mean_iqr_ms,
            "max_iqr_ms (measured)": report.max_iqr_ms,
            "laggard_fraction (measured)": report.laggard_fraction,
            "mean_reclaimable_ms (measured)": report.mean_reclaimable_ms,
            "mean_idle_ratio (measured)": report.mean_idle_ratio,
        }
        if include_paper and name in SECTION4_METRICS:
            paper = SECTION4_METRICS[name]
            row.update(
                {
                    "mean_median_arrival_ms (paper)": paper["mean_median_arrival_ms"],
                    "mean_iqr_ms (paper)": paper["mean_iqr_ms"],
                    "max_iqr_ms (paper)": paper["max_iqr_ms"],
                    "laggard_fraction (paper)": paper["laggard_fraction"],
                    "mean_reclaimable_ms (paper)": paper["mean_reclaimable_ms"],
                    "mean_idle_ratio (paper)": paper["mean_idle_ratio"],
                }
            )
        rows.append(row)
    return rows


def section41_normality_table(
    datasets: Dict[str, TableSource], *, include_paper: bool = True
) -> List[Dict[str, object]]:
    """Rows of the §4.1 application/application-iteration outcomes."""
    rows: List[Dict[str, object]] = []
    for name, source in datasets.items():
        if isinstance(source, AnalysisResults):
            product = source["normality"]
            rejected = product.application_rejected
            app_iter_passes = product.application_iteration_pass_counts
            if app_iter_passes is None:
                raise ValueError(
                    "the streaming normality product carries no "
                    "application-iteration counts (sketch mode?); re-run the "
                    "'normality' pass in exact mode for the Section 4.1 table"
                )
        else:
            study = ThreadTimingAnalyzer(source).normality()
            rejected = study.application_rejects_normality()
            app_iter_passes = study.application_iteration_pass_counts()
        row: Dict[str, object] = {
            "application": _label(name),
            "application level rejected (measured)": rejected,
            "app-iterations passing D'Agostino (measured)": app_iter_passes["dagostino"],
        }
        if include_paper and name in SECTION41_NORMALITY:
            paper = SECTION41_NORMALITY[name]
            row["application level rejected (paper)"] = paper["application_level_rejected"]
            row["app-iterations passing D'Agostino (paper)"] = paper[
                "application_iteration_passes_dagostino"
            ]
        rows.append(row)
    return rows


def minimd_phase_table(dataset: TableSource, warmup_iterations: int = 19) -> List[Dict[str, object]]:
    """The §4.2.2 two-phase IQR comparison for MiniMD (Figure 6's sections)."""
    if isinstance(dataset, AnalysisResults):
        series = dataset["percentiles"]
    else:
        series = ThreadTimingAnalyzer(dataset).percentile_series()
    warmup = series.iqr_summary(slice(0, warmup_iterations))
    steady = series.iqr_summary(slice(warmup_iterations, None))
    paper = SECTION4_METRICS["minimd"]
    return [
        {
            "section": "iterations 1-19 (warm-up)",
            "mean_iqr_ms (measured)": warmup["mean"],
            "max_iqr_ms (measured)": warmup["max"],
            "mean_iqr_ms (paper)": paper["warmup_mean_iqr_ms"],
            "max_iqr_ms (paper)": paper["warmup_max_iqr_ms"],
        },
        {
            "section": "remaining iterations",
            "mean_iqr_ms (measured)": steady["mean"],
            "max_iqr_ms (measured)": steady["max"],
            "mean_iqr_ms (paper)": paper["mean_iqr_ms"],
            "max_iqr_ms (paper)": paper["max_iqr_ms"],
        },
    ]
