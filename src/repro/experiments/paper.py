"""The paper's reported values, for paper-vs-measured comparison.

Every number below is transcribed from the paper's §4 (Table 1 and the §4.2
prose).  They feed the comparison tables in EXPERIMENTS.md, the benchmark
assertions (which check *qualitative* agreement, not absolute equality) and
the example scripts' side-by-side printouts.
"""

from __future__ import annotations

from typing import Dict

#: Table 1 — percentage of process-iterations passing each normality test.
TABLE1_PASS_PERCENT: Dict[str, Dict[str, float]] = {
    "minife": {"dagostino": 3.0, "shapiro_wilk": 1.0, "anderson_darling": 1.0},
    "minimd": {"dagostino": 77.0, "shapiro_wilk": 74.0, "anderson_darling": 76.0},
    "miniqmc": {"dagostino": 95.0, "shapiro_wilk": 96.0, "anderson_darling": 96.0},
}

#: §4.2 scalar metrics per application.
SECTION4_METRICS: Dict[str, Dict[str, float]] = {
    "minife": {
        "mean_median_arrival_ms": 26.30,
        "mean_iqr_ms": 0.18,
        "max_iqr_ms": 4.24,
        "laggard_fraction": 0.224,
        "mean_reclaimable_ms": 42.82,
        "mean_idle_ratio": 0.1928,
    },
    "minimd": {
        "mean_median_arrival_ms": 24.74,
        "mean_iqr_ms": 0.15,       # post-warm-up section
        "max_iqr_ms": 7.43,        # post-warm-up section
        "warmup_mean_iqr_ms": 0.93,
        "warmup_max_iqr_ms": 1.45,
        "warmup_iterations": 19,
        "laggard_fraction": 0.048,
        "mean_reclaimable_ms": 17.61,
        "mean_idle_ratio": 0.5012,
    },
    "miniqmc": {
        "mean_median_arrival_ms": 60.91,
        "mean_iqr_ms": 9.05,
        "max_iqr_ms": 15.61,
        "laggard_fraction": float("nan"),  # not reported (wide, not laggard-driven)
        "mean_reclaimable_ms": 708.03,
        "mean_idle_ratio": 0.5033,
    },
}

#: §4.1 — application-level and application-iteration-level outcomes.
SECTION41_NORMALITY: Dict[str, Dict[str, object]] = {
    "minife": {
        "application_level_rejected": True,
        "application_iteration_passes_dagostino": 0,
    },
    "minimd": {
        "application_level_rejected": True,
        "application_iteration_passes_dagostino": 0,
    },
    "miniqmc": {
        "application_level_rejected": True,
        # eight application iterations failed to reject under D'Agostino only
        "application_iteration_passes_dagostino": 8,
    },
}

#: §3.1/§4.2 figure parameters (bin widths etc.), for the generators.
FIGURE_PARAMETERS: Dict[str, Dict[str, float]] = {
    "figure3": {"bin_width_s": 10.0e-6},
    "figure5": {"bin_width_s": 50.0e-6},
    "figure7a": {"bin_width_s": 50.0e-6},
    "figure7bc": {"bin_width_s": 10.0e-6},
    "figure9": {"bin_width_s": 1.0e-3},
}

#: Qualitative claims the benchmarks assert ("shape", not absolute values).
QUALITATIVE_CLAIMS = {
    "minife_mostly_nonnormal_process_iterations": "MiniFE passes < 10% of process-iterations",
    "minimd_mostly_normal_process_iterations": "MiniMD passes the majority of process-iterations",
    "miniqmc_mostly_normal_process_iterations": "MiniQMC passes ~95% of process-iterations",
    "minife_laggard_band": "MiniFE laggard fraction is an order ~20% (10-35%)",
    "minimd_laggard_band": "MiniMD post-warm-up laggard fraction is small (< 12%)",
    "miniqmc_widest_iqr": "MiniQMC has the widest IQR of the three applications",
    "minife_early_skew": "MiniFE early arrivals are more common than late arrivals",
    "minimd_two_phase": "MiniMD's first 19 iterations have a wider IQR than the rest",
    "application_level_rejected": "all applications reject normality at the application level",
    "reclaimable_ordering": "MiniQMC has the largest mean reclaimable time",
}


def paper_laggard_fraction(application: str) -> float:
    """Convenience accessor handling the NaN for MiniQMC."""
    return SECTION4_METRICS[application]["laggard_fraction"]


#: Everything above in one mapping (the import most consumers use).
PAPER_REFERENCE = {
    "table1_pass_percent": TABLE1_PASS_PERCENT,
    "section4_metrics": SECTION4_METRICS,
    "section41_normality": SECTION41_NORMALITY,
    "figure_parameters": FIGURE_PARAMETERS,
    "qualitative_claims": QUALITATIVE_CLAIMS,
}
