"""Campaign configurations.

The paper's experimental design (§3.2): ten trials per application, eight
processes per job, 48 threads per process (all hardware contexts of a node
pair), two hundred iterations, on the Manzano machine.
:meth:`CampaignConfig.paper_scale` reproduces that; smaller presets exist for
tests, examples and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.cluster.config import MachineConfig, manzano


@dataclass
class CampaignConfig:
    """Parameters of one measurement campaign (one application)."""

    application: str = "minife"
    trials: int = 10
    processes: int = 8
    iterations: int = 200
    threads: int = 48
    seed: int = 20230421  # arXiv submission date of the paper
    machine: MachineConfig = field(default_factory=manzano)
    #: execution backend name, resolved against the backend registry
    #: (:func:`repro.experiments.backends.available_backends`); the built-ins
    #: are ``"vectorized"``, ``"batched"``, ``"event"`` and ``"chunked"``
    backend: str = "vectorized"
    #: worker-pool size for parallel sharded execution (1 = serial); results
    #: are bit-identical at any worker count
    max_workers: int = 1
    #: optional OpenMP schedule clause (``"static"``, ``"dynamic,4"``,
    #: ``"guided"``) overriding the application's default loop schedule
    schedule: Optional[str] = None
    #: optional scenario label this config was derived from (reports/metadata
    #: only — it never affects the sampled data or the result cache key)
    scenario: Optional[str] = None

    def __post_init__(self) -> None:
        if min(self.trials, self.processes, self.iterations, self.threads) < 1:
            raise ValueError("trials, processes, iterations and threads must be >= 1")
        if isinstance(self.max_workers, bool) or not isinstance(self.max_workers, int):
            raise TypeError(
                f"max_workers must be an integer >= 1, got "
                f"{self.max_workers!r} ({type(self.max_workers).__name__})"
            )
        if self.max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1 (1 = serial execution), got "
                f"{self.max_workers}"
            )
        if self.schedule is not None:
            # validate eagerly so a bad clause fails at construction with the
            # schedule parser's error, not deep inside a worker process
            from repro.openmp.schedule import schedule_from_name

            schedule_from_name(self.schedule)
        # imported lazily: backends depends on the apps/core stack, which in
        # turn constructs configs — the registry is only needed at validation
        from repro.experiments.backends import get_backend

        # get_backend normalises (case/whitespace) and raises a ValueError
        # listing the registered names for unknown backends
        self.backend = get_backend(self.backend).name
        needed_nodes = -(-self.processes * self.threads // self.machine.cores_per_node)
        if self.machine.n_nodes < needed_nodes:
            self.machine = replace(self.machine, n_nodes=needed_nodes)

    # ------------------------------------------------------------------
    @property
    def samples_per_application(self) -> int:
        """Total number of thread-timing samples the campaign produces."""
        return self.trials * self.processes * self.iterations * self.threads

    @property
    def process_iterations(self) -> int:
        """Number of process-iteration groups (Table-1 granularity)."""
        return self.trials * self.processes * self.iterations

    def for_application(self, application: str) -> "CampaignConfig":
        """Copy of this configuration targeting another application."""
        return replace(self, application=application)

    def parallel(self, max_workers: int) -> "CampaignConfig":
        """Copy of this configuration with a parallel worker-pool size."""
        return replace(self, max_workers=max_workers)

    def with_backend(self, backend: str) -> "CampaignConfig":
        """Copy of this configuration on another registered backend."""
        return replace(self, backend=backend)

    def with_schedule(self, schedule: Optional[str]) -> "CampaignConfig":
        """Copy of this configuration under another OpenMP loop schedule."""
        return replace(self, schedule=schedule)

    def scaled(self, *, trials: Optional[int] = None, processes: Optional[int] = None,
               iterations: Optional[int] = None, threads: Optional[int] = None) -> "CampaignConfig":
        """Copy with some dimensions overridden."""
        return replace(
            self,
            trials=trials if trials is not None else self.trials,
            processes=processes if processes is not None else self.processes,
            iterations=iterations if iterations is not None else self.iterations,
            threads=threads if threads is not None else self.threads,
        )

    # ------------------------------------------------------------------
    @classmethod
    def paper_scale(cls, application: str = "minife", seed: int = 20230421) -> "CampaignConfig":
        """The paper's full §3.2 configuration (768 000 samples/application)."""
        return cls(application=application, trials=10, processes=8, iterations=200,
                   threads=48, seed=seed, machine=manzano())

    @classmethod
    def benchmark_scale(cls, application: str = "minife", seed: int = 20230421) -> "CampaignConfig":
        """Reduced configuration used by the pytest benchmarks.

        Keeps the full 48-thread teams and 200 iterations (the dimensions the
        figures depend on) but fewer trials/processes so a benchmark iteration
        stays in the seconds range.
        """
        return cls(application=application, trials=2, processes=2, iterations=200,
                   threads=48, seed=seed, machine=manzano())

    @classmethod
    def smoke(cls, application: str = "minife", seed: int = 7) -> "CampaignConfig":
        """Tiny configuration for unit/integration tests."""
        return cls(application=application, trials=1, processes=2, iterations=12,
                   threads=16, seed=seed, machine=manzano(n_nodes=1))

    @classmethod
    def from_scenario(
        cls, name: str, scale: str = "smoke", **overrides
    ) -> "CampaignConfig":
        """The configuration of a registered scenario (see
        :mod:`repro.scenarios`) at the given scale."""
        from repro.scenarios.scenario import get_scenario

        return get_scenario(name).campaign_config(scale, **overrides)
