"""Pluggable campaign execution backends.

A :class:`CampaignBackend` turns a :class:`~repro.experiments.config.CampaignConfig`
into timing samples.  Backends are registered by name with
:func:`register_backend` and looked up with :func:`get_backend`, so new
execution strategies (cached, distributed, GPU-resident, ...) plug into the
campaign layer without touching it.  Three backends ship with the package:

* ``"vectorized"`` — the application's calibrated work/cost/noise models are
  sampled directly (no event engine).  This is how full paper-scale campaigns
  (768 000 samples per application) complete in seconds.
* ``"event"`` — every thread is a process on the discrete-event engine, the
  entry/exit barriers and every noise preemption happen as events, and the
  timestamps come from the per-core monotonic clocks.  Slower; used by the
  examples and by integration tests that check the backends agree.
* ``"chunked"`` — the vectorized math, exposed as a lazy stream of
  per-(trial, process) :class:`~repro.core.timing.TimingShard` chunks instead
  of one eagerly-materialised dense dataset.  This is the memory-bounded
  streaming path of :class:`~repro.experiments.session.CampaignSession`.
* ``"batched"`` — the whole-shard kernel: one (trial, process) shard is
  sampled as a few large-array operations over an
  ``(n_iterations, n_threads)`` matrix instead of ``n_iterations`` small
  per-iteration passes.  Fastest by a wide margin for *every* schedule
  clause — static folds closed-form, dynamic/guided through the
  row-vectorised work-queue replay (bit-identical per row to the
  per-iteration ``simulate``).  Draws its randomness in a different order
  than ``"vectorized"``, so the two agree in distribution but not
  bit-for-bit (the batched backend pins its own digests).
* ``"campaign"`` — the whole-campaign tensor kernel: the batched math lifted
  one more axis, sampling *all* (trial, process) shards as
  ``(n_shards, n_iterations, n_threads)`` arrays — one schedule fold and
  one columnar instrumenter assembly for an entire shard chunk
  (``chunk_shards`` bounds peak memory).  Draw streams are keyed by
  absolute shard scope, so results are bit-identical across any chunking
  *and any worker count*: with ``max_workers > 1`` whole chunks fold in
  parallel on a process pool, returning their columns through shared
  memory (or spilling straight into a
  :class:`~repro.io.shard_store.ShardStore`).  Like ``"batched"`` it
  agrees with ``"vectorized"`` in distribution, not bit-for-bit, and pins
  its own digests.  :meth:`CampaignTensorBackend.run_many` additionally
  lets several compatible campaigns (scenario-matrix sweeps, concurrent
  service jobs) share one tensor execution.

Every backend decomposes its campaign into *shards* (:meth:`shard_specs` /
:meth:`run_shard`).  A shard re-derives all of its random streams from the
campaign's root seed by name, which makes shards order-independent: the
parallel executor can run them in any order on any worker and the merged
result stays bit-identical to a serial run.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import os
import threading
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Type

import numpy as np

from repro.apps import get_application
from repro.apps.base import ProxyApplication
from repro.core.instrument import RegionInstrumenter
from repro.core.timing import TimingDataset, TimingShard
from repro.sim.random import PurposeSplitRNG, RandomStreams, maybe_scope

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.experiments.config import CampaignConfig


def build_application(config: "CampaignConfig") -> ProxyApplication:
    """Instantiate the configured application with campaign-sized threading.

    The application's :class:`~repro.apps.base.ApplicationConfig` is replaced
    with a fresh copy (never mutated in place), so campaign sizing can't leak
    into other campaigns sharing an application instance or config object.
    A campaign-level ``schedule`` clause (scenario override) replaces the
    application's default loop schedule.
    """
    app = get_application(config.application)
    overrides = {"n_threads": config.threads, "n_iterations": config.iterations}
    if getattr(config, "schedule", None) is not None:
        from repro.openmp.schedule import schedule_from_name

        overrides["schedule"] = schedule_from_name(config.schedule)
    app.config = dataclasses.replace(app.config, **overrides)
    return app


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """Address of one unit of campaign work.

    ``process is None`` addresses all processes of the trial (used by
    backends that can only shard at trial granularity).
    """

    trial: int
    process: Optional[int] = None


class CampaignBackend(ABC):
    """Execution strategy of a measurement campaign.

    Subclasses implement the shard decomposition (:meth:`shard_specs`) and
    the per-shard execution (:meth:`run_shard`); the base class provides the
    serial drivers (:meth:`run`, :meth:`iter_shards`) on top of them.
    """

    #: registered backend name (set by :func:`register_backend`)
    name: str = "abstract"
    #: whether the backend is primarily consumed as a shard stream
    streaming: bool = False
    #: whether shards may be fanned out across the parallel executor's
    #: worker pool; ``False`` forces the executor onto the serial path that
    #: defers to :meth:`iter_shards` (backends whose unit of work is the
    #: whole campaign, not a shard)
    parallelizable: bool = True
    #: whether the backend parallelizes at *chunk* granularity instead —
    #: ``True`` means the executor may call :meth:`iter_shards_parallel`
    #: (the campaign tensor backend: shards are not units of work, but whole
    #: shard chunks fold independently on a worker pool)
    chunk_parallel: bool = False

    # ------------------------------------------------------------------
    # shard decomposition
    # ------------------------------------------------------------------
    @abstractmethod
    def shard_specs(self, config: "CampaignConfig") -> List[ShardSpec]:
        """The campaign's shards, in serial (trial-major) order."""

    @abstractmethod
    def run_shard(
        self, config: "CampaignConfig", spec: ShardSpec, streams: RandomStreams
    ) -> TimingShard:
        """Execute one shard.  Must only use streams derived by name from
        ``streams`` so that execution is independent of shard order."""

    # ------------------------------------------------------------------
    # serial drivers
    # ------------------------------------------------------------------
    def iter_shards(
        self, config: "CampaignConfig", streams: Optional[RandomStreams] = None
    ) -> Iterator[TimingShard]:
        """Lazily yield the campaign's shards in serial order."""
        streams = streams if streams is not None else RandomStreams(config.seed)
        for spec in self.shard_specs(config):
            yield self.run_shard(config, spec, streams)

    def run(
        self, config: "CampaignConfig", streams: Optional[RandomStreams] = None
    ) -> TimingDataset:
        """Run the whole campaign serially and merge into one dataset."""
        return TimingDataset.merge(
            self.iter_shards(config, streams), metadata=self.metadata(config)
        )

    # ------------------------------------------------------------------
    def metadata(self, config: "CampaignConfig") -> Dict[str, object]:
        """Campaign-level dataset metadata (same content for all backends)."""
        app = build_application(config)
        meta = {
            "application": app.name,
            "region": app.region,
            "trials": config.trials,
            "processes": config.processes,
            "iterations": config.iterations,
            "threads": config.threads,
            "seed": config.seed,
            "backend": config.backend,
            "machine": config.machine.name,
            "noise_enabled": config.machine.noise_spec.enabled,
            **app.describe(),
        }
        if getattr(config, "scenario", None) is not None:
            meta["scenario"] = config.scenario
        return meta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_BACKENDS: Dict[str, Type[CampaignBackend]] = {}


def register_backend(name=None, *, replace: bool = False):
    """Class decorator registering a :class:`CampaignBackend` by name.

    Usable bare (``@register_backend`` — uses the class's ``name``) or with
    an explicit name (``@register_backend("chunked")``).  Registering a name
    twice raises unless ``replace=True`` (or the class is identical, which
    makes module re-imports idempotent).
    """

    def decorator(cls: Type[CampaignBackend]) -> Type[CampaignBackend]:
        if not (isinstance(cls, type) and issubclass(cls, CampaignBackend)):
            raise TypeError("register_backend expects a CampaignBackend subclass")
        key = (name if isinstance(name, str) else cls.name).strip().lower()
        if not key or key == "abstract":
            raise ValueError("backend needs a concrete registration name")
        existing = _BACKENDS.get(key)
        if existing is not None and existing is not cls and not replace:
            raise ValueError(
                f"backend {key!r} is already registered ({existing.__name__}); "
                "pass replace=True to override"
            )
        cls.name = key
        _BACKENDS[key] = cls
        return cls

    if isinstance(name, type):  # bare @register_backend
        cls, name = name, None
        return decorator(cls)
    return decorator


def available_backends() -> Tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str) -> CampaignBackend:
    """Instantiate the backend registered under ``name``."""
    key = str(name).strip().lower()
    try:
        cls = _BACKENDS[key]
    except KeyError:
        raise ValueError(
            f"unknown campaign backend {name!r}; registered backends: "
            f"{', '.join(available_backends()) or '(none)'}"
        ) from None
    return cls()


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (primarily for tests)."""
    _BACKENDS.pop(str(name).strip().lower(), None)


# ----------------------------------------------------------------------
# built-in backends
# ----------------------------------------------------------------------
@register_backend("vectorized")
class VectorizedBackend(CampaignBackend):
    """Closed-form sampling of the calibrated work/cost/noise models.

    Shards at (trial, process) granularity: each shard re-derives that
    process's ``work``/``noise`` streams by name and replays its iterations,
    exactly as the serial nested loop would.
    """

    def shard_specs(self, config: "CampaignConfig") -> List[ShardSpec]:
        return [
            ShardSpec(trial=trial, process=process)
            for trial in range(config.trials)
            for process in range(config.processes)
        ]

    def run_shard(
        self, config: "CampaignConfig", spec: ShardSpec, streams: RandomStreams
    ) -> TimingShard:
        if spec.process is None:
            raise ValueError(f"{self.name} backend shards per process, got {spec}")
        app = build_application(config)
        trial, process = spec.trial, spec.process
        work_rng = streams.get(app.name, "work", trial, process)
        noise_rng = streams.get(app.name, "noise", trial, process)
        noise = config.machine.build_noise_model(noise_rng)
        app.begin_process(process, work_rng)
        instrumenter = RegionInstrumenter(region=app.region, application=app.name)
        for iteration in range(config.iterations):
            times = app.thread_compute_times(
                process=process,
                iteration=iteration,
                rng=work_rng,
                noise=noise,
            )
            instrumenter.record_compute_times(
                trial=trial,
                process=process,
                iteration=iteration,
                compute_times_s=times,
            )
        return TimingShard.from_dataset(
            instrumenter.dataset(), trial=trial, process=process
        )


@register_backend("batched")
class BatchedBackend(VectorizedBackend):
    """Whole-shard closed-form sampling over an iteration × thread matrix.

    Shards exactly like the vectorized backend — per (trial, process), with
    all streams re-derived by name, so parallel execution stays
    bit-identical to serial at any worker count.  Within a shard, the
    application's :meth:`~repro.apps.base.ProxyApplication.thread_compute_times_batch`
    samples every iteration at once: the schedule folds the full cost matrix
    through its batch kernel, jitter is one 2-D draw, every noise source
    contributes one whole-matrix ``batch_extra``, and the shard's columns
    are assembled with a single columnar
    :meth:`~repro.core.instrument.RegionInstrumenter.record_block`.

    The per-iteration path interleaves its random draws iteration by
    iteration while this backend draws them population by population, so the
    sampled values differ bit-wise from ``"vectorized"`` while agreeing in
    distribution (property-tested over apps × schedules × noise profiles).
    """

    def run_shard(
        self, config: "CampaignConfig", spec: ShardSpec, streams: RandomStreams
    ) -> TimingShard:
        if spec.process is None:
            raise ValueError(f"{self.name} backend shards per process, got {spec}")
        app = build_application(config)
        trial, process = spec.trial, spec.process
        work_rng = streams.get(app.name, "work", trial, process)
        noise_rng = streams.get(app.name, "noise", trial, process)
        noise = config.machine.build_noise_model(noise_rng)
        app.begin_process(process, work_rng)
        times = app.thread_compute_times_batch(
            process=process, rng=work_rng, noise=noise
        )
        instrumenter = RegionInstrumenter(region=app.region, application=app.name)
        instrumenter.record_block(trial=trial, process=process, compute_times_s=times)
        return TimingShard.from_dataset(
            instrumenter.dataset(), trial=trial, process=process
        )


@register_backend("chunked")
class ChunkedBackend(VectorizedBackend):
    """Streaming variant of the vectorized backend.

    Identical per-shard math (so a merged chunked run is bit-identical to a
    vectorized run), but meant to be consumed shard-by-shard through
    :meth:`CampaignBackend.iter_shards` /
    :meth:`~repro.experiments.session.CampaignSession.stream`, keeping at most
    one (trial, process) chunk in memory at a time.
    """

    streaming = True


@register_backend("event")
class EventBackend(CampaignBackend):
    """Discrete-event execution on the simulated OpenMP runtime.

    Shards at trial granularity: the per-trial clock domain draws per-core
    clocks lazily as processes touch their cores, so splitting a trial across
    workers would change the draw order.  Within a shard the processes run in
    serial order, which keeps results bit-identical to a fully serial run.

    Noise is served from a :class:`~repro.cluster.noise.WindowedNoiseModel`:
    each (core, trial) owns one pre-generated event timeline extended a whole
    window at a time, so ``run_region`` stops drawing noise events iteration
    by iteration — region execution queries the cached timeline instead.
    (Adopting the windowed model changed the backend's noise draw order, so
    its reference digest was re-recorded; distributional agreement with the
    vectorized path is unchanged.)
    """

    def shard_specs(self, config: "CampaignConfig") -> List[ShardSpec]:
        return [ShardSpec(trial=trial) for trial in range(config.trials)]

    def run_shard(
        self, config: "CampaignConfig", spec: ShardSpec, streams: RandomStreams
    ) -> TimingShard:
        # imported here: the OpenMP runtime is only needed by this backend
        from repro.openmp.runtime import OpenMPRuntime
        from repro.openmp.team import ThreadTeam

        app = build_application(config)
        cluster = config.machine.build_cluster()
        placements = cluster.place_processes(config.processes, config.threads)
        instrumenter = RegionInstrumenter(region=app.region, application=app.name)
        trial = spec.trial
        clock_domain = config.machine.build_clock_domain(streams.get("clocks", trial))
        for process in range(config.processes):
            work_rng = streams.get(app.name, "work", trial, process)
            noise_rng = streams.get(app.name, "noise", trial, process)
            team_rng = streams.get(app.name, "team", trial, process)
            # windowed: one pre-generated noise timeline per (core, trial)
            # window instead of a fresh draw per delay query
            noise = config.machine.build_noise_model(noise_rng, windowed=True)
            app.begin_process(process, work_rng)
            team = ThreadTeam(placements[process], clock_domain, noise, rng=team_rng)
            runtime = OpenMPRuntime(team)
            for iteration in range(config.iterations):
                costs = app.item_costs(process, iteration, work_rng)
                delays = app.application_delays(process, iteration, work_rng)
                execution = runtime.run_region(
                    costs,
                    schedule=app.config.schedule,
                    region=app.region,
                    iteration=iteration,
                    detailed=True,
                )
                # application-level delays act after the loop body (e.g. a
                # straggler thread's extra stall) — add them to the recorded
                # exit timestamps
                for thread in execution.threads:
                    extra_ns = int(round(delays[thread.thread_id] * 1e9))
                    instrumenter.record_thread(
                        trial=trial,
                        process=process,
                        iteration=iteration,
                        thread=thread.thread_id,
                        start_ns=thread.start_ns,
                        end_ns=thread.end_ns + extra_ns,
                    )
        return TimingShard.from_dataset(
            instrumenter.dataset(), trial=trial, process=None
        )


def campaign_group_key(config: "CampaignConfig") -> Tuple:
    """Grouping key for campaigns that can share one tensor execution.

    Two configs with equal keys run the same application geometry under the
    same loop schedule for the same number of iterations and threads — so
    their cost tensors concatenate along the shard axis and fold through
    *one* ``simulate_campaign`` call.  Seeds, machines and noise profiles may
    differ freely: every draw comes from per-config purpose streams, so
    grouped execution stays bit-identical to per-config runs.
    """
    schedule = getattr(config, "schedule", None)
    normalized = str(schedule).strip().lower() if schedule is not None else None
    return (config.application, config.threads, config.iterations, normalized)


# ----------------------------------------------------------------------
# chunk-parallel plumbing of the campaign tensor backend
#
# Workers are module-level functions (picklable) that rebuild the whole
# execution context from the picklable CampaignConfig: the shard-keyed
# PurposeSplitRNG makes a chunk's draws depend only on which shards it
# contains, so any worker can fold any chunk and the assembled campaign is
# bit-identical to a serial run.  Process workers ship their columns back
# through one multiprocessing.shared_memory segment per chunk (created only
# *after* the fold succeeds, so a crashed fold leaves nothing in /dev/shm)
# instead of pickling (n_shards, n_iterations, n_threads)-sized arrays —
# the parent attaches, copies the columns once, and unlinks.  When spilling
# out of core, workers skip the parent entirely and write their chunk
# straight into the ShardStore's on-disk group format.
# ----------------------------------------------------------------------
def _make_pool(mode: str, workers: int):
    if mode == "thread":
        return ThreadPoolExecutor(max_workers=workers)
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = None
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


def _chunk_columns(
    app: ProxyApplication, chunk: List[Tuple[int, int]], times: np.ndarray
) -> Dict[str, np.ndarray]:
    """Assemble one chunk's full column block (the zero-copy unit shipped
    between processes and appended via ``record_columns``)."""
    instrumenter = RegionInstrumenter(region=app.region, application=app.name)
    instrumenter.record_campaign(shards=chunk, compute_times_s=times)
    dataset = instrumenter.dataset()
    return {name: dataset.column(name) for name in dataset.columns}


def _slice_chunk_shards(
    chunk: List[Tuple[int, int]], columns: Dict[str, np.ndarray], per_shard: int
) -> List[TimingShard]:
    """Per-shard column views out of one chunk's assembled block."""
    shards = []
    for index, (trial, process) in enumerate(chunk):
        rows = slice(index * per_shard, (index + 1) * per_shard)
        shards.append(
            TimingShard(
                trial=trial,
                process=process,
                columns={name: array[rows] for name, array in columns.items()},
            )
        )
    return shards


def _pack_blocks(
    blocks: List[Dict[str, np.ndarray]],
) -> Tuple[str, List[List[Tuple[str, str, Tuple[int, ...], int]]]]:
    """Pack column blocks into one shared-memory segment (worker side).

    Returns the segment name plus per-block ``(column, dtype, shape,
    offset)`` descriptors.  Created only after the fold finished, so a
    worker that dies mid-fold never leaves a segment behind.
    """
    total = sum(
        np.ascontiguousarray(array).nbytes
        for block in blocks
        for array in block.values()
    )
    segment = shared_memory.SharedMemory(create=True, size=max(1, total))
    # The parent's attach re-registers the segment with the (fork-shared)
    # resource tracker and its unlink unregisters it, so drop the creation
    # registration here — otherwise the tracker double-counts and warns
    # about a "leaked" segment at shutdown.
    resource_tracker.unregister(segment._name, "shared_memory")
    try:
        descriptors: List[List[Tuple[str, str, Tuple[int, ...], int]]] = []
        offset = 0
        for block in blocks:
            entries = []
            for name in sorted(block):
                array = np.ascontiguousarray(block[name])
                view = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=segment.buf, offset=offset
                )
                view[...] = array
                entries.append((name, array.dtype.str, array.shape, offset))
                offset += array.nbytes
            descriptors.append(entries)
        return segment.name, descriptors
    finally:
        segment.close()


def _unpack_blocks(segment_name: str, descriptors) -> List[Dict[str, np.ndarray]]:
    """Copy packed column blocks out of shared memory and unlink it (parent
    side).  One copy per column — the fork-shared resource tracker then
    forgets the segment cleanly."""
    segment = shared_memory.SharedMemory(name=segment_name)
    try:
        blocks = []
        for entries in descriptors:
            block = {}
            for name, dtype, shape, offset in entries:
                view = np.ndarray(
                    tuple(shape),
                    dtype=np.dtype(dtype),
                    buffer=segment.buf,
                    offset=offset,
                )
                block[name] = view.copy()
            blocks.append(block)
        return blocks
    finally:
        segment.close()
        segment.unlink()


def _discard_shm(segment_name: str) -> None:
    """Unlink an undelivered worker segment (cancelled consumer)."""
    try:
        segment = shared_memory.SharedMemory(name=segment_name)
    except FileNotFoundError:
        return
    segment.close()
    segment.unlink()


def _discard_shm_result(result) -> None:
    _discard_shm(result[0])


def _discard_payload_result(result) -> None:
    Path(result[0]).unlink(missing_ok=True)


#: per-worker execution-context cache.  Pool workers are reused across
#: chunks, so rebuilding the application per chunk would redo its one-time
#: setup — cost calibration, the deterministic busy-row fold MiniFE caches
#: on the app instance — for every chunk, costing more than the fold
#: itself.  Keyed by config equality; thread-local so thread-pool workers
#: never share a PurposeSplitRNG (its scope stack is mutable).  Reusing a
#: context is bit-identical to a fresh one: the shard-keyed draw streams
#: make every draw depend only on its absolute scope path.
_WORKER_STATE = threading.local()
_WORKER_CONTEXT_SLOTS = 8


def _worker_context(config: "CampaignConfig") -> tuple:
    cache = getattr(_WORKER_STATE, "contexts", None)
    if cache is None:
        cache = _WORKER_STATE.contexts = []
    for cached, context in cache:
        if cached == config:
            return context
    context = CampaignTensorBackend()._context(config, None)
    cache.append((config, context))
    if len(cache) > _WORKER_CONTEXT_SLOTS:
        cache.pop(0)
    return context


def _campaign_chunk_columns(
    config: "CampaignConfig", chunk: List[Tuple[int, int]]
) -> Dict[str, np.ndarray]:
    """Fold one shard chunk and assemble its column block (worker body)."""
    app, rng, noise, _ = _worker_context(config)
    chunk = [tuple(shard) for shard in chunk]
    times = app.thread_compute_times_campaign(shards=chunk, rng=rng, noise=noise)
    return _chunk_columns(app, chunk, times)


def _run_campaign_chunk_shm(config: "CampaignConfig", chunk):
    """Process-pool worker: fold a chunk, ship its columns via shared memory."""
    return _pack_blocks([_campaign_chunk_columns(config, chunk)])


def _chunk_slices(chunk: List[Tuple[int, int]], per_shard: int):
    """One :class:`~repro.core.aggregation.ShardSlice` per chunk shard."""
    from repro.core.aggregation import ShardSlice

    return [
        ShardSlice(
            trial=trial,
            process=process,
            start=index * per_shard,
            stop=(index + 1) * per_shard,
        )
        for index, (trial, process) in enumerate(chunk)
    ]


def _campaign_chunk_partials(config: "CampaignConfig", chunk, mapper):
    """Worker body of the fused execute-and-analyse path: fold one chunk and
    apply a columnar block mapper to it in place.

    Only the mapper's per-shard results (analysis-pass partial states)
    travel back to the parent — no shard assembly, no shared-memory copy of
    the sample columns at all."""
    chunk = [tuple(shard) for shard in chunk]
    columns = _campaign_chunk_columns(config, chunk)
    per_shard = config.iterations * config.threads
    return mapper(columns, _chunk_slices(chunk, per_shard))


def _spill_campaign_chunk(config: "CampaignConfig", chunk, store_dir: str, tag: int):
    """Process-pool worker: fold a chunk and spill it as a finished
    shard-store group payload — the arrays never travel to the parent."""
    from repro.io.shard_store import write_group_payload

    columns = _campaign_chunk_columns(config, chunk)
    per_shard = config.iterations * config.threads
    shards = _slice_chunk_shards([tuple(s) for s in chunk], columns, per_shard)
    path = Path(store_dir) / f"chunk-{tag:05d}-{os.getpid()}.payload"
    entry = write_group_payload(path, shards)
    return str(path), entry


def _fold_group_chunk(group: List["CampaignConfig"], chunk_entries):
    """Worker body of one *grouped* execution chunk.

    Mirrors ``CampaignTensorBackend._run_group``'s per-chunk logic: split
    the chunk into per-config contiguous segments, share one
    ``simulate_campaign`` fold across every tensor segment, finalize each
    segment under its own config's purpose streams.  Returns
    ``(config_index, shards, columns)`` triples.
    """
    def context(config_index: int):
        return _worker_context(group[config_index])

    n_iterations = group[0].iterations
    n_threads = group[0].threads
    segments: List[Tuple[int, List[Tuple[int, int]]]] = []
    for config_index, shard in chunk_entries:
        if segments and segments[-1][0] == config_index:
            segments[-1][1].append(tuple(shard))
        else:
            segments.append((config_index, [tuple(shard)]))
    results = []
    folded: List[Tuple[int, List[Tuple[int, int]], Optional[np.ndarray]]] = []
    cost_planes: List[np.ndarray] = []
    schedule = None
    for config_index, shards in segments:
        app, rng, noise, _ = context(config_index)
        if schedule is None:
            schedule = app.config.schedule
        if not app.campaign_tensor:
            times = app.thread_compute_times_campaign(
                shards=shards, rng=rng, noise=noise
            )
            results.append((config_index, shards, _chunk_columns(app, shards, times)))
            folded.append((config_index, shards, None))
            continue
        with maybe_scope(rng, "state"):
            app.begin_campaign(shards, rng)
        with maybe_scope(rng, "costs"):
            costs = app.item_costs_campaign(shards, n_iterations, rng)
        cost_planes.append(np.asarray(costs, dtype=np.float64))
        folded.append((config_index, shards, cost_planes[-1]))
    if cost_planes:
        busy_all = schedule.simulate_campaign(
            np.concatenate(cost_planes, axis=0), n_threads
        )
        offset = 0
        for config_index, shards, costs in folded:
            if costs is None:
                continue
            app, rng, noise, _ = context(config_index)
            base = busy_all[offset : offset + len(shards)]
            offset += len(shards)
            times = app.finalize_campaign_times(base, shards, n_iterations, rng, noise)
            results.append((config_index, shards, _chunk_columns(app, shards, times)))
    return results


def _fold_group_chunk_shm(group: List["CampaignConfig"], chunk_entries):
    """Process-pool worker: a grouped chunk's segments, packed in one
    shared-memory segment."""
    results = _fold_group_chunk(group, chunk_entries)
    segment_name, descriptors = _pack_blocks(
        [columns for _, _, columns in results]
    )
    meta = [(config_index, shards) for config_index, shards, _ in results]
    return meta, segment_name, descriptors


@register_backend("campaign")
class CampaignTensorBackend(CampaignBackend):
    """Whole-campaign tensor sampling: every shard in one (chunked) pass.

    The batched shard kernel lifted one axis: all (trial, process) shards of
    a campaign are sampled together as ``(n_shards, n_iterations,
    n_threads)`` arrays — one schedule fold through
    :meth:`~repro.openmp.schedule.LoopSchedule.simulate_campaign` and one
    columnar
    :meth:`~repro.core.instrument.RegionInstrumenter.record_campaign`
    assembly per chunk.  ``chunk_shards`` bounds how many shards are
    resident at once; the results are **bit-identical for every chunking
    and every worker count** because all draws run through the shard-keyed
    :class:`~repro.sim.random.PurposeSplitRNG` — a draw's value depends
    only on its absolute (scope path, method, occurrence) identity, never
    on what folded before it.

    Randomness is necessarily ordered differently than both
    ``"vectorized"`` (per iteration) and ``"batched"`` (per shard), so this
    backend agrees with them in distribution — property-tested — while
    pinning its own smoke digests.  The schedule fold itself keeps per-row
    bit-identity with ``simulate_batch``/``simulate``.

    The campaign is one unit of work per *chunk*, not per shard, so the
    executor's shard fan-out is bypassed (``parallelizable = False``);
    parallelism happens at chunk granularity instead (``chunk_parallel =
    True``): :meth:`iter_shards_parallel` / the parallel :meth:`run` /
    :meth:`run_many` fold whole chunks on a worker pool and ship the
    columns back through shared memory (or straight into a
    :class:`~repro.io.shard_store.ShardStore` when spilling).
    :meth:`run_shard` is unavailable by construction.
    """

    streaming = True
    parallelizable = False
    chunk_parallel = True

    #: default shard-chunk size: large enough that benchmark-scale campaigns
    #: (4 shards) run in one pass, small enough that a paper-scale MiniFE
    #: campaign never materialises more than ~0.5 GB of cost tensor
    DEFAULT_CHUNK_SHARDS = 8

    def __init__(self, chunk_shards: Optional[int] = None) -> None:
        if chunk_shards is not None and chunk_shards < 1:
            raise ValueError("chunk_shards must be >= 1")
        self.chunk_shards = (
            int(chunk_shards) if chunk_shards is not None else self.DEFAULT_CHUNK_SHARDS
        )

    # ------------------------------------------------------------------
    def shard_specs(self, config: "CampaignConfig") -> List[ShardSpec]:
        return [
            ShardSpec(trial=trial, process=process)
            for trial in range(config.trials)
            for process in range(config.processes)
        ]

    def run_shard(
        self, config: "CampaignConfig", spec: ShardSpec, streams: RandomStreams
    ) -> TimingShard:
        raise NotImplementedError(
            "the campaign backend samples whole campaigns, not single shards; "
            "use iter_shards()/run() (the executor's serial path does)"
        )

    # ------------------------------------------------------------------
    def _context(self, config: "CampaignConfig", streams: Optional[RandomStreams]):
        """Per-campaign execution context: app, purpose rng, noise model."""
        streams = streams if streams is not None else RandomStreams(config.seed)
        app = build_application(config)
        rng = PurposeSplitRNG(streams, app.name, "campaign")
        noise = config.machine.build_noise_model(
            streams.get(app.name, "campaign-noise-model")
        )
        shards = [(spec.trial, spec.process) for spec in self.shard_specs(config)]
        return app, rng, noise, shards

    def _emit_shards(
        self, app: ProxyApplication, chunk: List[Tuple[int, int]], times: np.ndarray
    ) -> Iterator[TimingShard]:
        """One columnar assembly for the chunk, sliced into per-shard views."""
        columns = _chunk_columns(app, chunk, times)
        per_shard = times.shape[1] * times.shape[2]
        yield from _slice_chunk_shards(chunk, columns, per_shard)

    def iter_shards(
        self, config: "CampaignConfig", streams: Optional[RandomStreams] = None
    ) -> Iterator[TimingShard]:
        """Yield the campaign's shards, sampled a whole chunk at a time."""
        app, rng, noise, shards = self._context(config, streams)
        for start in range(0, len(shards), self.chunk_shards):
            chunk = shards[start : start + self.chunk_shards]
            times = app.thread_compute_times_campaign(
                shards=chunk, rng=rng, noise=noise
            )
            yield from self._emit_shards(app, chunk, times)

    def run(
        self,
        config: "CampaignConfig",
        streams: Optional[RandomStreams] = None,
        *,
        mode: str = "process",
    ) -> TimingDataset:
        """Run the whole campaign as one columnar assembly.

        Chunks append straight into a single instrumenter — no per-shard
        column slicing, no merge re-concatenation.  Shards are produced in
        trial-major order, so the rows equal the merged :meth:`iter_shards`
        stream bit-for-bit; only the assembly cost differs.

        ``config.max_workers > 1`` folds the chunks on a worker pool
        (``mode`` as in the executor: ``"process"`` or ``"thread"``) —
        bit-identical to serial thanks to the shard-keyed draw streams.
        Passing explicit ``streams`` forces the serial path (workers
        rebuild their streams from ``config.seed``).
        """
        workers = int(getattr(config, "max_workers", 1) or 1)
        if streams is None and workers > 1:
            chunks = self._parallel_chunks(config, workers)
            if len(chunks) > 1:
                app = build_application(config)
                instrumenter = RegionInstrumenter(
                    region=app.region,
                    application=app.name,
                    metadata=self.metadata(config),
                )
                for columns in self._iter_parallel_columns(
                    config, chunks, min(workers, len(chunks)), mode
                ):
                    instrumenter.record_columns(columns)
                return instrumenter.dataset()
        app, rng, noise, shards = self._context(config, streams)
        instrumenter = RegionInstrumenter(
            region=app.region,
            application=app.name,
            metadata=self.metadata(config),
        )
        for start in range(0, len(shards), self.chunk_shards):
            chunk = shards[start : start + self.chunk_shards]
            times = app.thread_compute_times_campaign(
                shards=chunk, rng=rng, noise=noise
            )
            instrumenter.record_campaign(shards=chunk, compute_times_s=times)
        return instrumenter.dataset()

    # ------------------------------------------------------------------
    # chunk-parallel drivers
    # ------------------------------------------------------------------
    def _parallel_chunk_size(self, n_shards: int, workers: int) -> int:
        """Effective chunk size of a parallel run: never above
        ``chunk_shards`` (the memory bound), shrunk so every worker gets at
        least one chunk.  Any chunking is bit-identical, so splitting finer
        only trades a little assembly overhead for parallel coverage."""
        per_worker = -(-n_shards // workers)  # ceil
        return max(1, min(self.chunk_shards, per_worker))

    def _parallel_chunks(
        self, config: "CampaignConfig", workers: int
    ) -> List[List[Tuple[int, int]]]:
        shards = [(spec.trial, spec.process) for spec in self.shard_specs(config)]
        workers = max(1, min(int(workers), len(shards)))
        size = self._parallel_chunk_size(len(shards), workers)
        return [shards[start : start + size] for start in range(0, len(shards), size)]

    def _map_chunks_pooled(self, tasks, workers: int, mode: str, *, discard=None):
        """Run ``(fn, args)`` tasks on a pool; yield results in submission
        order through a bounded in-flight window (~2 x workers).

        A worker process that dies mid-task surfaces as a clear
        ``RuntimeError`` (never a hang); closing the consumer cancels the
        queued tasks at the next chunk boundary, and ``discard`` releases
        any undelivered completed results (shared-memory segments, spilled
        payload files) so nothing leaks.
        """
        pool = _make_pool(mode, workers)
        task_iter = iter(tasks)
        pending: deque = deque()

        def submit_next() -> None:
            for fn, args in itertools.islice(task_iter, 1):
                pending.append(pool.submit(fn, *args))

        try:
            for _ in range(2 * workers):
                submit_next()
            while pending:
                future = pending.popleft()
                try:
                    result = future.result()
                except BrokenProcessPool as exc:
                    raise RuntimeError(
                        "a campaign chunk worker died mid-fold (the pool is "
                        "broken); re-run serially (max_workers=1) to isolate "
                        "the failing chunk"
                    ) from exc
                submit_next()
                yield result
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
            for future in pending:
                if future.cancelled():
                    continue
                try:
                    result = future.result()
                except Exception:
                    continue
                if discard is not None:
                    discard(result)

    def _iter_parallel_columns(
        self, config: "CampaignConfig", chunks, workers: int, mode: str
    ) -> Iterator[Dict[str, np.ndarray]]:
        """Fold chunks on a pool; yield each chunk's column block in order."""
        if mode == "thread":
            tasks = [(_campaign_chunk_columns, (config, chunk)) for chunk in chunks]
            yield from self._map_chunks_pooled(tasks, workers, mode)
            return
        tasks = [(_run_campaign_chunk_shm, (config, chunk)) for chunk in chunks]
        for segment_name, descriptors in self._map_chunks_pooled(
            tasks, workers, mode, discard=_discard_shm_result
        ):
            yield _unpack_blocks(segment_name, descriptors)[0]

    def iter_shards_parallel(
        self,
        config: "CampaignConfig",
        *,
        workers: int,
        mode: str = "process",
        store=None,
    ) -> Iterator[TimingShard]:
        """Stream the campaign's shards with chunks folded on a worker pool.

        Shards arrive in trial-major order (chunks are delivered in
        submission order), bit-identical to :meth:`iter_shards`.  With a
        ``store`` and process workers, each worker spills its chunk straight
        into the store's on-disk group format and the parent merely adopts
        the finished file — the sample arrays never cross the process
        boundary, and the yielded shards are the store's zero-copy mmap
        views.  Closing the iterator cancels queued chunks at the next
        chunk boundary.
        """
        chunks = self._parallel_chunks(config, workers)
        workers = max(1, min(int(workers), len(chunks)))
        if workers <= 1 or len(chunks) <= 1:
            for shard in self.iter_shards(config):
                if store is not None:
                    store.append(shard)
                yield shard
            return
        per_shard = config.iterations * config.threads
        if store is not None and mode == "process":
            tasks = [
                (_spill_campaign_chunk, (config, chunk, str(store.path), index))
                for index, chunk in enumerate(chunks)
            ]
            for payload, entry in self._map_chunks_pooled(
                tasks, workers, mode, discard=_discard_payload_result
            ):
                adopted = store.adopt_group(payload, entry)
                yield from store.iter_group(adopted)
            return
        blocks = self._iter_parallel_columns(config, chunks, workers, mode)
        for chunk, columns in zip(chunks, blocks):
            shards = _slice_chunk_shards(chunk, columns, per_shard)
            if store is not None:
                store.extend(shards)
            yield from shards

    def map_chunk_blocks(
        self,
        config: "CampaignConfig",
        mapper,
        *,
        workers: Optional[int] = None,
        mode: str = "process",
    ) -> Iterator[list]:
        """Fold chunks and apply ``mapper(columns, slices)`` where they land.

        The fused execute-and-analyse driver: each chunk's column block is
        handed to ``mapper`` (e.g. the analysis engine's
        ``ColumnarAnalyzer``) right where the fold produced it — inside the
        pool worker when ``workers > 1`` — and only the mapper's result is
        delivered, in submission (trial-major) order.  When only analyses
        are requested this skips shard assembly and the shared-memory
        column copy entirely.  ``mapper`` must be picklable for process
        pools.
        """
        if workers is None:
            workers = int(getattr(config, "max_workers", 1) or 1)
        per_shard = config.iterations * config.threads
        chunks = self._parallel_chunks(config, max(1, int(workers)))
        workers = max(1, min(int(workers), len(chunks)))
        if workers <= 1 or len(chunks) <= 1:
            app, rng, noise, shards = self._context(config, None)
            for start in range(0, len(shards), self.chunk_shards):
                chunk = shards[start : start + self.chunk_shards]
                times = app.thread_compute_times_campaign(
                    shards=chunk, rng=rng, noise=noise
                )
                columns = _chunk_columns(app, chunk, times)
                yield mapper(columns, _chunk_slices(chunk, per_shard))
            return
        tasks = [
            (_campaign_chunk_partials, (config, chunk, mapper)) for chunk in chunks
        ]
        yield from self._map_chunks_pooled(tasks, workers, mode)

    # ------------------------------------------------------------------
    # grouped execution (scenario-matrix sweeps, coalesced service jobs)
    # ------------------------------------------------------------------
    def run_many(
        self, configs: List["CampaignConfig"], *, mode: str = "process"
    ) -> List[TimingDataset]:
        """Run several campaigns, sharing tensor execution where compatible.

        Configs with equal :func:`campaign_group_key` concatenate their cost
        tensors along the shard axis and fold the schedule *once* per chunk
        (plus one columnar assembly per config segment); incompatible
        configs run individually.  Returns the merged datasets in input
        order, each **bit-identical** to ``run(config)`` — all draws come
        from per-config purpose streams, only the deterministic fold and the
        assembly are shared.

        Any config requesting ``max_workers > 1`` makes its group fold
        chunks on a worker pool (``mode`` as in the executor) — grouped,
        parallel and solo runs all produce identical bits.
        """
        configs = list(configs)
        groups: Dict[Tuple, List[int]] = {}
        for index, config in enumerate(configs):
            groups.setdefault(campaign_group_key(config), []).append(index)
        results: List[Optional[TimingDataset]] = [None] * len(configs)
        for indices in groups.values():
            if len(indices) == 1:
                index = indices[0]
                results[index] = self.run(configs[index], mode=mode)
                continue
            group = [configs[i] for i in indices]
            workers = max(
                int(getattr(config, "max_workers", 1) or 1) for config in group
            )
            if workers > 1:
                shard_lists = self._run_group_parallel(group, workers, mode)
            else:
                shard_lists = self._run_group(group)
            for index, shards in zip(indices, shard_lists):
                results[index] = TimingDataset.merge(
                    shards, metadata=self.metadata(configs[index])
                )
        return results  # type: ignore[return-value]

    def _run_group_parallel(
        self, group: List["CampaignConfig"], workers: int, mode: str
    ) -> List[List[TimingShard]]:
        """Chunk-parallel variant of :meth:`_run_group`: the concatenated
        shard axis is chunked and each chunk's shared fold runs on a worker
        (``_fold_group_chunk``) — the shard-keyed streams make the result
        bit-identical to the serial grouped pass and to solo runs."""
        entries = [
            (config_index, (spec.trial, spec.process))
            for config_index, config in enumerate(group)
            for spec in self.shard_specs(config)
        ]
        workers = max(1, min(int(workers), len(entries)))
        size = self._parallel_chunk_size(len(entries), workers)
        chunks = [entries[start : start + size] for start in range(0, len(entries), size)]
        if workers <= 1 or len(chunks) <= 1:
            return self._run_group(group)
        per_shard = group[0].iterations * group[0].threads
        out: List[List[TimingShard]] = [[] for _ in group]
        if mode == "thread":
            tasks = [(_fold_group_chunk, (group, chunk)) for chunk in chunks]
            for results in self._map_chunks_pooled(tasks, workers, mode):
                for config_index, shards, columns in results:
                    out[config_index].extend(
                        _slice_chunk_shards(shards, columns, per_shard)
                    )
            return out
        tasks = [(_fold_group_chunk_shm, (group, chunk)) for chunk in chunks]
        for meta, segment_name, descriptors in self._map_chunks_pooled(
            tasks, workers, mode, discard=lambda result: _discard_shm(result[1])
        ):
            blocks = _unpack_blocks(segment_name, descriptors)
            for (config_index, shards), columns in zip(meta, blocks):
                out[config_index].extend(
                    _slice_chunk_shards(shards, columns, per_shard)
                )
        return out

    def _run_group(
        self, group: List["CampaignConfig"]
    ) -> List[List[TimingShard]]:
        """Shared tensor execution of one compatible config group."""
        contexts = [self._context(config, None) for config in group]
        n_iterations = group[0].iterations
        n_threads = group[0].threads
        schedule = contexts[0][0].config.schedule
        # concatenated shard axis: (config index, trial, process), config-major
        entries = [
            (config_index, shard)
            for config_index, (_, _, _, shards) in enumerate(contexts)
            for shard in shards
        ]
        out: List[List[TimingShard]] = [[] for _ in group]
        for start in range(0, len(entries), self.chunk_shards):
            chunk = entries[start : start + self.chunk_shards]
            # per-config contiguous segments of this chunk
            segments: List[Tuple[int, List[Tuple[int, int]]]] = []
            for config_index, shard in chunk:
                if segments and segments[-1][0] == config_index:
                    segments[-1][1].append(shard)
                else:
                    segments.append((config_index, [shard]))
            folded: List[Tuple[int, List[Tuple[int, int]], Optional[np.ndarray]]] = []
            cost_planes: List[np.ndarray] = []
            for config_index, shards in segments:
                app, rng, noise, _ = contexts[config_index]
                if not app.campaign_tensor:
                    # generic apps have no separable cost tensor: run their
                    # segment whole (still chunk-invariant, just unshared)
                    times = app.thread_compute_times_campaign(
                        shards=shards, rng=rng, noise=noise
                    )
                    out[config_index].extend(self._emit_shards(app, shards, times))
                    folded.append((config_index, shards, None))
                    continue
                with maybe_scope(rng, "state"):
                    app.begin_campaign(shards, rng)
                with maybe_scope(rng, "costs"):
                    costs = app.item_costs_campaign(shards, n_iterations, rng)
                cost_planes.append(np.asarray(costs, dtype=np.float64))
                folded.append((config_index, shards, cost_planes[-1]))
            if cost_planes:
                # the shared fold: one simulate_campaign over every tensor
                # segment of the chunk (deterministic, plane-bit-identical
                # to per-config folds)
                busy_all = schedule.simulate_campaign(
                    np.concatenate(cost_planes, axis=0), n_threads
                )
                offset = 0
                for config_index, shards, costs in folded:
                    if costs is None:
                        continue
                    app, rng, noise, _ = contexts[config_index]
                    base = busy_all[offset : offset + len(shards)]
                    offset += len(shards)
                    times = app.finalize_campaign_times(
                        base, shards, n_iterations, rng, noise
                    )
                    out[config_index].extend(self._emit_shards(app, shards, times))
        return out
