"""Pluggable campaign execution backends.

A :class:`CampaignBackend` turns a :class:`~repro.experiments.config.CampaignConfig`
into timing samples.  Backends are registered by name with
:func:`register_backend` and looked up with :func:`get_backend`, so new
execution strategies (cached, distributed, GPU-resident, ...) plug into the
campaign layer without touching it.  Three backends ship with the package:

* ``"vectorized"`` — the application's calibrated work/cost/noise models are
  sampled directly (no event engine).  This is how full paper-scale campaigns
  (768 000 samples per application) complete in seconds.
* ``"event"`` — every thread is a process on the discrete-event engine, the
  entry/exit barriers and every noise preemption happen as events, and the
  timestamps come from the per-core monotonic clocks.  Slower; used by the
  examples and by integration tests that check the backends agree.
* ``"chunked"`` — the vectorized math, exposed as a lazy stream of
  per-(trial, process) :class:`~repro.core.timing.TimingShard` chunks instead
  of one eagerly-materialised dense dataset.  This is the memory-bounded
  streaming path of :class:`~repro.experiments.session.CampaignSession`.
* ``"batched"`` — the whole-shard kernel: one (trial, process) shard is
  sampled as a few large-array operations over an
  ``(n_iterations, n_threads)`` matrix instead of ``n_iterations`` small
  per-iteration passes.  Fastest by a wide margin for *every* schedule
  clause — static folds closed-form, dynamic/guided through the
  row-vectorised work-queue replay (bit-identical per row to the
  per-iteration ``simulate``).  Draws its randomness in a different order
  than ``"vectorized"``, so the two agree in distribution but not
  bit-for-bit (the batched backend pins its own digests).

Every backend decomposes its campaign into *shards* (:meth:`shard_specs` /
:meth:`run_shard`).  A shard re-derives all of its random streams from the
campaign's root seed by name, which makes shards order-independent: the
parallel executor can run them in any order on any worker and the merged
result stays bit-identical to a serial run.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Type

from repro.apps import get_application
from repro.apps.base import ProxyApplication
from repro.core.instrument import RegionInstrumenter
from repro.core.timing import TimingDataset, TimingShard
from repro.sim.random import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.experiments.config import CampaignConfig


def build_application(config: "CampaignConfig") -> ProxyApplication:
    """Instantiate the configured application with campaign-sized threading.

    The application's :class:`~repro.apps.base.ApplicationConfig` is replaced
    with a fresh copy (never mutated in place), so campaign sizing can't leak
    into other campaigns sharing an application instance or config object.
    A campaign-level ``schedule`` clause (scenario override) replaces the
    application's default loop schedule.
    """
    app = get_application(config.application)
    overrides = {"n_threads": config.threads, "n_iterations": config.iterations}
    if getattr(config, "schedule", None) is not None:
        from repro.openmp.schedule import schedule_from_name

        overrides["schedule"] = schedule_from_name(config.schedule)
    app.config = dataclasses.replace(app.config, **overrides)
    return app


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """Address of one unit of campaign work.

    ``process is None`` addresses all processes of the trial (used by
    backends that can only shard at trial granularity).
    """

    trial: int
    process: Optional[int] = None


class CampaignBackend(ABC):
    """Execution strategy of a measurement campaign.

    Subclasses implement the shard decomposition (:meth:`shard_specs`) and
    the per-shard execution (:meth:`run_shard`); the base class provides the
    serial drivers (:meth:`run`, :meth:`iter_shards`) on top of them.
    """

    #: registered backend name (set by :func:`register_backend`)
    name: str = "abstract"
    #: whether the backend is primarily consumed as a shard stream
    streaming: bool = False

    # ------------------------------------------------------------------
    # shard decomposition
    # ------------------------------------------------------------------
    @abstractmethod
    def shard_specs(self, config: "CampaignConfig") -> List[ShardSpec]:
        """The campaign's shards, in serial (trial-major) order."""

    @abstractmethod
    def run_shard(
        self, config: "CampaignConfig", spec: ShardSpec, streams: RandomStreams
    ) -> TimingShard:
        """Execute one shard.  Must only use streams derived by name from
        ``streams`` so that execution is independent of shard order."""

    # ------------------------------------------------------------------
    # serial drivers
    # ------------------------------------------------------------------
    def iter_shards(
        self, config: "CampaignConfig", streams: Optional[RandomStreams] = None
    ) -> Iterator[TimingShard]:
        """Lazily yield the campaign's shards in serial order."""
        streams = streams if streams is not None else RandomStreams(config.seed)
        for spec in self.shard_specs(config):
            yield self.run_shard(config, spec, streams)

    def run(
        self, config: "CampaignConfig", streams: Optional[RandomStreams] = None
    ) -> TimingDataset:
        """Run the whole campaign serially and merge into one dataset."""
        return TimingDataset.merge(
            self.iter_shards(config, streams), metadata=self.metadata(config)
        )

    # ------------------------------------------------------------------
    def metadata(self, config: "CampaignConfig") -> Dict[str, object]:
        """Campaign-level dataset metadata (same content for all backends)."""
        app = build_application(config)
        meta = {
            "application": app.name,
            "region": app.region,
            "trials": config.trials,
            "processes": config.processes,
            "iterations": config.iterations,
            "threads": config.threads,
            "seed": config.seed,
            "backend": config.backend,
            "machine": config.machine.name,
            "noise_enabled": config.machine.noise_spec.enabled,
            **app.describe(),
        }
        if getattr(config, "scenario", None) is not None:
            meta["scenario"] = config.scenario
        return meta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_BACKENDS: Dict[str, Type[CampaignBackend]] = {}


def register_backend(name=None, *, replace: bool = False):
    """Class decorator registering a :class:`CampaignBackend` by name.

    Usable bare (``@register_backend`` — uses the class's ``name``) or with
    an explicit name (``@register_backend("chunked")``).  Registering a name
    twice raises unless ``replace=True`` (or the class is identical, which
    makes module re-imports idempotent).
    """

    def decorator(cls: Type[CampaignBackend]) -> Type[CampaignBackend]:
        if not (isinstance(cls, type) and issubclass(cls, CampaignBackend)):
            raise TypeError("register_backend expects a CampaignBackend subclass")
        key = (name if isinstance(name, str) else cls.name).strip().lower()
        if not key or key == "abstract":
            raise ValueError("backend needs a concrete registration name")
        existing = _BACKENDS.get(key)
        if existing is not None and existing is not cls and not replace:
            raise ValueError(
                f"backend {key!r} is already registered ({existing.__name__}); "
                "pass replace=True to override"
            )
        cls.name = key
        _BACKENDS[key] = cls
        return cls

    if isinstance(name, type):  # bare @register_backend
        cls, name = name, None
        return decorator(cls)
    return decorator


def available_backends() -> Tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str) -> CampaignBackend:
    """Instantiate the backend registered under ``name``."""
    key = str(name).strip().lower()
    try:
        cls = _BACKENDS[key]
    except KeyError:
        raise ValueError(
            f"unknown campaign backend {name!r}; registered backends: "
            f"{', '.join(available_backends()) or '(none)'}"
        ) from None
    return cls()


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (primarily for tests)."""
    _BACKENDS.pop(str(name).strip().lower(), None)


# ----------------------------------------------------------------------
# built-in backends
# ----------------------------------------------------------------------
@register_backend("vectorized")
class VectorizedBackend(CampaignBackend):
    """Closed-form sampling of the calibrated work/cost/noise models.

    Shards at (trial, process) granularity: each shard re-derives that
    process's ``work``/``noise`` streams by name and replays its iterations,
    exactly as the serial nested loop would.
    """

    def shard_specs(self, config: "CampaignConfig") -> List[ShardSpec]:
        return [
            ShardSpec(trial=trial, process=process)
            for trial in range(config.trials)
            for process in range(config.processes)
        ]

    def run_shard(
        self, config: "CampaignConfig", spec: ShardSpec, streams: RandomStreams
    ) -> TimingShard:
        if spec.process is None:
            raise ValueError(f"{self.name} backend shards per process, got {spec}")
        app = build_application(config)
        trial, process = spec.trial, spec.process
        work_rng = streams.get(app.name, "work", trial, process)
        noise_rng = streams.get(app.name, "noise", trial, process)
        noise = config.machine.build_noise_model(noise_rng)
        app.begin_process(process, work_rng)
        instrumenter = RegionInstrumenter(region=app.region, application=app.name)
        for iteration in range(config.iterations):
            times = app.thread_compute_times(
                process=process,
                iteration=iteration,
                rng=work_rng,
                noise=noise,
            )
            instrumenter.record_compute_times(
                trial=trial,
                process=process,
                iteration=iteration,
                compute_times_s=times,
            )
        return TimingShard.from_dataset(
            instrumenter.dataset(), trial=trial, process=process
        )


@register_backend("batched")
class BatchedBackend(VectorizedBackend):
    """Whole-shard closed-form sampling over an iteration × thread matrix.

    Shards exactly like the vectorized backend — per (trial, process), with
    all streams re-derived by name, so parallel execution stays
    bit-identical to serial at any worker count.  Within a shard, the
    application's :meth:`~repro.apps.base.ProxyApplication.thread_compute_times_batch`
    samples every iteration at once: the schedule folds the full cost matrix
    through its batch kernel, jitter is one 2-D draw, every noise source
    contributes one whole-matrix ``batch_extra``, and the shard's columns
    are assembled with a single columnar
    :meth:`~repro.core.instrument.RegionInstrumenter.record_block`.

    The per-iteration path interleaves its random draws iteration by
    iteration while this backend draws them population by population, so the
    sampled values differ bit-wise from ``"vectorized"`` while agreeing in
    distribution (property-tested over apps × schedules × noise profiles).
    """

    def run_shard(
        self, config: "CampaignConfig", spec: ShardSpec, streams: RandomStreams
    ) -> TimingShard:
        if spec.process is None:
            raise ValueError(f"{self.name} backend shards per process, got {spec}")
        app = build_application(config)
        trial, process = spec.trial, spec.process
        work_rng = streams.get(app.name, "work", trial, process)
        noise_rng = streams.get(app.name, "noise", trial, process)
        noise = config.machine.build_noise_model(noise_rng)
        app.begin_process(process, work_rng)
        times = app.thread_compute_times_batch(
            process=process, rng=work_rng, noise=noise
        )
        instrumenter = RegionInstrumenter(region=app.region, application=app.name)
        instrumenter.record_block(trial=trial, process=process, compute_times_s=times)
        return TimingShard.from_dataset(
            instrumenter.dataset(), trial=trial, process=process
        )


@register_backend("chunked")
class ChunkedBackend(VectorizedBackend):
    """Streaming variant of the vectorized backend.

    Identical per-shard math (so a merged chunked run is bit-identical to a
    vectorized run), but meant to be consumed shard-by-shard through
    :meth:`CampaignBackend.iter_shards` /
    :meth:`~repro.experiments.session.CampaignSession.stream`, keeping at most
    one (trial, process) chunk in memory at a time.
    """

    streaming = True


@register_backend("event")
class EventBackend(CampaignBackend):
    """Discrete-event execution on the simulated OpenMP runtime.

    Shards at trial granularity: the per-trial clock domain draws per-core
    clocks lazily as processes touch their cores, so splitting a trial across
    workers would change the draw order.  Within a shard the processes run in
    serial order, which keeps results bit-identical to a fully serial run.

    Noise is served from a :class:`~repro.cluster.noise.WindowedNoiseModel`:
    each (core, trial) owns one pre-generated event timeline extended a whole
    window at a time, so ``run_region`` stops drawing noise events iteration
    by iteration — region execution queries the cached timeline instead.
    (Adopting the windowed model changed the backend's noise draw order, so
    its reference digest was re-recorded; distributional agreement with the
    vectorized path is unchanged.)
    """

    def shard_specs(self, config: "CampaignConfig") -> List[ShardSpec]:
        return [ShardSpec(trial=trial) for trial in range(config.trials)]

    def run_shard(
        self, config: "CampaignConfig", spec: ShardSpec, streams: RandomStreams
    ) -> TimingShard:
        # imported here: the OpenMP runtime is only needed by this backend
        from repro.openmp.runtime import OpenMPRuntime
        from repro.openmp.team import ThreadTeam

        app = build_application(config)
        cluster = config.machine.build_cluster()
        placements = cluster.place_processes(config.processes, config.threads)
        instrumenter = RegionInstrumenter(region=app.region, application=app.name)
        trial = spec.trial
        clock_domain = config.machine.build_clock_domain(streams.get("clocks", trial))
        for process in range(config.processes):
            work_rng = streams.get(app.name, "work", trial, process)
            noise_rng = streams.get(app.name, "noise", trial, process)
            team_rng = streams.get(app.name, "team", trial, process)
            # windowed: one pre-generated noise timeline per (core, trial)
            # window instead of a fresh draw per delay query
            noise = config.machine.build_noise_model(noise_rng, windowed=True)
            app.begin_process(process, work_rng)
            team = ThreadTeam(placements[process], clock_domain, noise, rng=team_rng)
            runtime = OpenMPRuntime(team)
            for iteration in range(config.iterations):
                costs = app.item_costs(process, iteration, work_rng)
                delays = app.application_delays(process, iteration, work_rng)
                execution = runtime.run_region(
                    costs,
                    schedule=app.config.schedule,
                    region=app.region,
                    iteration=iteration,
                    detailed=True,
                )
                # application-level delays act after the loop body (e.g. a
                # straggler thread's extra stall) — add them to the recorded
                # exit timestamps
                for thread in execution.threads:
                    extra_ns = int(round(delays[thread.thread_id] * 1e9))
                    instrumenter.record_thread(
                        trial=trial,
                        process=process,
                        iteration=iteration,
                        thread=thread.thread_id,
                        start_ns=thread.start_ns,
                        end_ns=thread.end_ns + extra_ns,
                    )
        return TimingShard.from_dataset(
            instrumenter.dataset(), trial=trial, process=None
        )
