"""Per-figure data generators.

Each function regenerates the data behind one figure of the paper,
returning a :class:`FigureData` that carries the raw series plus enough
labelling to render it (ASCII in the examples, CSV for external plotting)
and to assert its qualitative shape in the benchmarks.

Figure sources come in two flavours, and every generator accepts either:

* a merged :class:`~repro.core.timing.TimingDataset` (the legacy in-memory
  path), or
* the :class:`~repro.analysis.AnalysisResults` of a streaming run (exact
  mode), which is what the CLI default path feeds — the merged dataset is
  never materialised.  The exemplar histograms of Figures 5/7/9 need raw
  samples a finalized product cannot carry, so those generators take the
  campaign's ``shards`` alongside (histogram binning is order-independent,
  making the shard-scan bit-identical to the dense path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.engine import AnalysisResults
from repro.core.analyzer import ThreadTimingAnalyzer
from repro.core.earlybird import EarlyBirdModel
from repro.core.laggard import IterationClass, LaggardAnalysis
from repro.core.timing import TimingDataset, TimingShard
from repro.experiments.paper import FIGURE_PARAMETERS
from repro.stats.histogram import FixedWidthHistogram, fixed_width_histogram
from repro.stats.percentiles import PercentileSeries

#: every figure generator accepts either source flavour
FigureSource = Union[TimingDataset, AnalysisResults]


@dataclass
class FigureData:
    """One regenerated figure: identifying metadata plus its data objects."""

    figure_id: str
    title: str
    application: str
    payload: Dict[str, object] = field(default_factory=dict)

    def __getitem__(self, key: str):
        return self.payload[key]

    def keys(self):
        return self.payload.keys()


# ----------------------------------------------------------------------
# Figures 1 & 2 — the early-bird model and the potential overlap
# ----------------------------------------------------------------------
def figure1_earlybird_timeline(
    arrivals_s: Sequence[float],
    *,
    buffer_bytes: int = 8 * 1024 * 1024,
    model: Optional[EarlyBirdModel] = None,
) -> FigureData:
    """Figure 1: per-partition ready/injection/delivery timeline vs bulk."""
    eb = model if model is not None else EarlyBirdModel(buffer_bytes=buffer_bytes)
    outcome = eb.evaluate(arrivals_s)
    transfer = outcome.earlybird_transfer
    return FigureData(
        figure_id="figure1",
        title="Early-bird model of communication",
        application="model",
        payload={
            "arrivals_s": np.asarray(arrivals_s, dtype=np.float64),
            "partition_ready_s": transfer.ready_times(),
            "partition_delivery_s": transfer.delivery_times(),
            "bulk_completion_s": outcome.bulk_completion_s,
            "earlybird_completion_s": outcome.earlybird_completion_s,
            "improvement_s": outcome.improvement_s,
            "speedup": outcome.speedup,
        },
    )


def figure2_potential_overlap(
    arrivals_s: Sequence[float],
    *,
    model: Optional[EarlyBirdModel] = None,
) -> FigureData:
    """Figure 2: per-thread potential-overlap windows (the green boxes)."""
    eb = model if model is not None else EarlyBirdModel()
    windows = eb.overlap_windows(arrivals_s)
    return FigureData(
        figure_id="figure2",
        title="Potential for computation-communication overlap",
        application="model",
        payload={
            "threads": np.array([w.thread for w in windows]),
            "arrival_s": np.array([w.arrival_s for w in windows]),
            "window_s": np.array([w.window_s for w in windows]),
            "total_overlap_s": float(sum(w.window_s for w in windows)),
        },
    )


# ----------------------------------------------------------------------
# source plumbing: datasets and streaming results interchangeably
# ----------------------------------------------------------------------
def _laggards_product(source: FigureSource):
    """The laggard product behind Figures 5/7/9's exemplars.

    Returns a :class:`~repro.core.laggard.LaggardAnalysis` (dense datasets,
    or exact-mode streaming results) — or the sketch-mode
    :class:`~repro.analysis.passes.LaggardsResult`, whose bounded candidate
    pools still answer ``laggard_fraction`` and ``exemplar`` queries.
    """
    if isinstance(source, AnalysisResults):
        product = source["laggards"]
        if product.analysis is not None:
            return product.analysis
        return product
    return ThreadTimingAnalyzer(source).laggards()


def _laggard_analysis(source: FigureSource) -> LaggardAnalysis:
    """The per-group laggard analysis behind Figures 5/7/9's exemplars."""
    laggards = _laggards_product(source)
    if isinstance(laggards, LaggardAnalysis):
        return laggards
    raise ValueError(
        "the streaming laggards product carries no per-group analysis "
        "(sketch mode?); re-run the 'laggards' pass in exact mode to "
        "generate exemplar figures"
    )


def _group_samples(shards, key: Tuple[int, int, int]) -> np.ndarray:
    """One process-iteration's samples scanned straight out of the shards.

    Shard segments are concatenated in serial (trial-major) order —
    the dense path's row order — and histogram binning is order-independent
    anyway, so figures built from this match the merged-dataset path bit for
    bit.  Works for per-(trial, process) executor shards, the per-trial
    shards a cache hit derives, and anything exposing ``iter_shards()`` —
    a :class:`~repro.io.shard_store.ShardStore` or a store-backed
    :class:`~repro.experiments.session.CampaignResult` — which is streamed
    in its own (already serial) order with only the matched samples copied
    out, so each group's memory mappings are released as the scan advances.
    """
    trial, process, iteration = (int(part) for part in key)
    if hasattr(shards, "iter_shards"):
        iterator = shards.iter_shards()
    else:
        iterator = iter(sorted(shards, key=lambda s: s.sort_key))
    parts = []
    for shard in iterator:
        # a shard's address narrows the scan: skip other trials/processes
        # without touching their column data at all
        if int(shard.trial) != trial:
            continue
        if shard.process is not None and int(shard.process) != process:
            continue
        columns = shard.columns
        mask = (
            (np.asarray(columns["trial"]) == trial)
            & (np.asarray(columns["process"]) == process)
            & (np.asarray(columns["iteration"]) == iteration)
        )
        if np.any(mask):
            # copy: the matched values must outlive the shard's (possibly
            # memory-mapped) backing arrays
            parts.append(np.array(columns["compute_time_s"])[mask])
    if not parts:
        raise KeyError(f"no samples for process-iteration {key} in the shards")
    return np.concatenate(parts)


def _group_histogram(
    source: FigureSource,
    key: Tuple[int, int, int],
    bin_width_s: float,
    shards: Optional[Sequence[TimingShard]],
) -> FixedWidthHistogram:
    """Histogram of one process-iteration from whichever source is at hand."""
    if isinstance(source, AnalysisResults):
        if shards is None:
            raise ValueError(
                "exemplar histograms from streaming results need the "
                "campaign's shards (pass shards=result.shards)"
            )
        return fixed_width_histogram(
            _group_samples(shards, key), bin_width_s, unit="s"
        )
    return ThreadTimingAnalyzer(source).process_iteration_histogram(key, bin_width_s)


# ----------------------------------------------------------------------
# Figure 3 — application-level histograms
# ----------------------------------------------------------------------
def figure3_histogram(source: FigureSource) -> FigureData:
    """Figure 3: application-level arrival histogram with 10 µs bins."""
    bin_width = FIGURE_PARAMETERS["figure3"]["bin_width_s"]
    if isinstance(source, AnalysisResults):
        histogram = source["histogram"]
    else:
        histogram = ThreadTimingAnalyzer(source).application_histogram(bin_width)
    return FigureData(
        figure_id="figure3",
        title="Application thread arrival time histogram",
        application=source.application,
        payload={
            "histogram": histogram,
            "peak_ms": histogram.mode_center * 1e3,
            "samples": histogram.total,
        },
    )


# ----------------------------------------------------------------------
# Figures 4 / 6 / 8 — percentile plots
# ----------------------------------------------------------------------
def percentile_figure(source: FigureSource, figure_id: str) -> FigureData:
    """Shared generator of the three percentile plots."""
    if isinstance(source, AnalysisResults):
        series = source["percentiles"]
    else:
        series = ThreadTimingAnalyzer(source).percentile_series()
    return FigureData(
        figure_id=figure_id,
        title="Per-iteration thread arrival percentiles",
        application=source.application,
        payload={
            "series": series,
            "mean_median_ms": series.mean_median(),
            "mean_iqr_ms": float(series.iqr.mean()),
            "max_iqr_ms": float(series.iqr.max()),
            "skew_direction": series.skew_direction(),
        },
    )


def figure4_minife_percentiles(source: FigureSource) -> FigureData:
    """Figure 4: MiniFE mat-vec arrival percentiles per iteration."""
    return percentile_figure(source, "figure4")


def figure6_minimd_percentiles(source: FigureSource, warmup_iterations: int = 19) -> FigureData:
    """Figure 6: MiniMD force-loop percentiles per iteration (two-phase)."""
    data = percentile_figure(source, "figure6")
    series: PercentileSeries = data["series"]  # type: ignore[assignment]
    data.payload["warmup_mean_iqr_ms"] = float(series.iqr[:warmup_iterations].mean())
    data.payload["steady_mean_iqr_ms"] = float(series.iqr[warmup_iterations:].mean())
    data.payload["warmup_iterations"] = warmup_iterations
    return data


def figure8_miniqmc_percentiles(source: FigureSource) -> FigureData:
    """Figure 8: MiniQMC mover percentiles per iteration."""
    return percentile_figure(source, "figure8")


# ----------------------------------------------------------------------
# Figures 5 / 7 / 9 — example process-iteration histograms per class
# ----------------------------------------------------------------------
def figure5_minife_classes(
    source: FigureSource,
    *,
    shards: Optional[Sequence[TimingShard]] = None,
) -> FigureData:
    """Figure 5: MiniFE no-laggard vs laggard example histograms (50 µs bins).

    From streaming results, pass the campaign's ``shards`` so the exemplar
    histograms can be binned without a merged dataset.  Sketch-mode results
    answer from the laggards pass's bounded candidate pools — exemplars are
    then approximate (within one candidate-pool quantile spacing) but the
    fractions stay exact.
    """
    laggards = _laggards_product(source)
    bin_width = FIGURE_PARAMETERS["figure5"]["bin_width_s"]
    payload: Dict[str, object] = {
        "laggard_fraction": laggards.laggard_fraction,
        "no_laggard_fraction": 1.0 - laggards.laggard_fraction,
    }
    for cls, label in ((IterationClass.NO_LAGGARD, "no_laggard"), (IterationClass.LAGGARD, "laggard")):
        key = laggards.exemplar(cls)
        payload[f"{label}_exemplar"] = key
        payload[f"{label}_histogram"] = (
            _group_histogram(source, key, bin_width, shards) if key is not None else None
        )
    return FigureData(
        figure_id="figure5",
        title="MiniFE thread arrival distribution classes",
        application=source.application,
        payload=payload,
    )


def figure7_minimd_classes(
    source: FigureSource,
    warmup_iterations: int = 19,
    *,
    shards: Optional[Sequence[TimingShard]] = None,
) -> FigureData:
    """Figure 7: MiniMD initial / no-laggard / laggard example histograms.

    Sketch-mode streaming results lack the dense per-group arrays: the
    warm-up/steady split is then approximated from the laggards pass's
    bounded candidate pools (keys filtered by iteration) and the steady
    laggard fraction by the campaign-wide laggard fraction — an exact tally
    that differs from the steady-only fraction just by the warm-up share.
    """
    wide_bin = FIGURE_PARAMETERS["figure7a"]["bin_width_s"]
    tight_bin = FIGURE_PARAMETERS["figure7bc"]["bin_width_s"]
    laggards = _laggards_product(source)

    if isinstance(laggards, LaggardAnalysis):
        # (a) initial behaviour: any process-iteration from the warm-up phase
        warmup_keys = [key for key in laggards.keys if key[-1] < warmup_iterations]

        # (b)/(c): post-warm-up laggard statistics
        steady_indices = [
            i for i, key in enumerate(laggards.keys) if key[-1] >= warmup_iterations
        ]
        steady_has_laggard = laggards.has_laggard[steady_indices]
        steady_fraction = (
            float(np.mean(steady_has_laggard)) if steady_indices else 0.0
        )

        def steady_exemplar(want_laggard: bool):
            candidates = [
                laggards.keys[i]
                for i in steady_indices
                if bool(laggards.has_laggard[i]) == want_laggard
            ]
            return candidates[len(candidates) // 2] if candidates else None

    else:  # sketch mode: answer from the bounded candidate pools
        pools = laggards.candidates or {}
        pooled_keys = [key for pool in pools.values() for key in pool.keys]
        warmup_keys = sorted(
            key for key in pooled_keys if key[-1] < warmup_iterations
        )
        steady_fraction = laggards.laggard_fraction

        def steady_exemplar(want_laggard: bool):
            names = (
                (IterationClass.LAGGARD.value, IterationClass.WIDE.value)
                if want_laggard
                else (IterationClass.NO_LAGGARD.value,)
            )
            candidates = sorted(
                key
                for name in names
                for pool in (pools.get(name),)
                if pool is not None
                for key in pool.keys
                if key[-1] >= warmup_iterations
            )
            return candidates[len(candidates) // 2] if candidates else None

    initial_hist = (
        _group_histogram(source, warmup_keys[len(warmup_keys) // 2], wide_bin, shards)
        if warmup_keys
        else None
    )

    payload: Dict[str, object] = {
        "initial_histogram": initial_hist,
        "steady_laggard_fraction": steady_fraction,
        "steady_no_laggard_fraction": 1.0 - steady_fraction,
        "warmup_iterations": warmup_iterations,
    }
    for want, label in ((False, "no_laggard"), (True, "laggard")):
        key = steady_exemplar(want)
        payload[f"{label}_exemplar"] = key
        payload[f"{label}_histogram"] = (
            _group_histogram(source, key, tight_bin, shards) if key is not None else None
        )
    return FigureData(
        figure_id="figure7",
        title="MiniMD thread arrival distribution classes",
        application=source.application,
        payload=payload,
    )


def figure9_miniqmc_histogram(
    source: FigureSource,
    *,
    shards: Optional[Sequence[TimingShard]] = None,
) -> FigureData:
    """Figure 9: a representative MiniQMC process-iteration histogram (1 ms bins)."""
    bin_width = FIGURE_PARAMETERS["figure9"]["bin_width_s"]
    laggards = _laggards_product(source)
    key = laggards.exemplar(IterationClass.WIDE)
    if key is None:
        if isinstance(laggards, LaggardAnalysis):
            key = laggards.keys[len(laggards.keys) // 2]
        else:  # sketch mode: fall back to any class's exemplar
            for cls in IterationClass:
                key = laggards.exemplar(cls)
                if key is not None:
                    break
    if key is None:
        raise ValueError("no exemplar candidates available for figure 9")
    histogram = _group_histogram(source, key, bin_width, shards)
    return FigureData(
        figure_id="figure9",
        title="MiniQMC thread arrival distribution example",
        application=source.application,
        payload={
            "histogram": histogram,
            "exemplar": key,
            "spread_ms": histogram.spread() * 1e3,
        },
    )


#: Registry used by the CLI runner: figure id → (applications, generator).
FIGURE_GENERATORS = {
    "figure3": (("minife", "minimd", "miniqmc"), figure3_histogram),
    "figure4": (("minife",), figure4_minife_percentiles),
    "figure5": (("minife",), figure5_minife_classes),
    "figure6": (("minimd",), figure6_minimd_percentiles),
    "figure7": (("minimd",), figure7_minimd_classes),
    "figure8": (("miniqmc",), figure8_miniqmc_percentiles),
    "figure9": (("miniqmc",), figure9_miniqmc_histogram),
}
