"""Per-figure data generators.

Each function regenerates the data behind one figure of the paper from a
timing dataset (or, for Figures 1/2, from an arrival vector), returning a
:class:`FigureData` that carries the raw series plus enough labelling to
render it (ASCII in the examples, CSV for external plotting) and to assert
its qualitative shape in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.analyzer import ThreadTimingAnalyzer
from repro.core.earlybird import EarlyBirdModel
from repro.core.laggard import IterationClass
from repro.core.timing import TimingDataset
from repro.experiments.paper import FIGURE_PARAMETERS
from repro.stats.histogram import FixedWidthHistogram
from repro.stats.percentiles import PercentileSeries


@dataclass
class FigureData:
    """One regenerated figure: identifying metadata plus its data objects."""

    figure_id: str
    title: str
    application: str
    payload: Dict[str, object] = field(default_factory=dict)

    def __getitem__(self, key: str):
        return self.payload[key]

    def keys(self):
        return self.payload.keys()


# ----------------------------------------------------------------------
# Figures 1 & 2 — the early-bird model and the potential overlap
# ----------------------------------------------------------------------
def figure1_earlybird_timeline(
    arrivals_s: Sequence[float],
    *,
    buffer_bytes: int = 8 * 1024 * 1024,
    model: Optional[EarlyBirdModel] = None,
) -> FigureData:
    """Figure 1: per-partition ready/injection/delivery timeline vs bulk."""
    eb = model if model is not None else EarlyBirdModel(buffer_bytes=buffer_bytes)
    outcome = eb.evaluate(arrivals_s)
    transfer = outcome.earlybird_transfer
    return FigureData(
        figure_id="figure1",
        title="Early-bird model of communication",
        application="model",
        payload={
            "arrivals_s": np.asarray(arrivals_s, dtype=np.float64),
            "partition_ready_s": transfer.ready_times(),
            "partition_delivery_s": transfer.delivery_times(),
            "bulk_completion_s": outcome.bulk_completion_s,
            "earlybird_completion_s": outcome.earlybird_completion_s,
            "improvement_s": outcome.improvement_s,
            "speedup": outcome.speedup,
        },
    )


def figure2_potential_overlap(
    arrivals_s: Sequence[float],
    *,
    model: Optional[EarlyBirdModel] = None,
) -> FigureData:
    """Figure 2: per-thread potential-overlap windows (the green boxes)."""
    eb = model if model is not None else EarlyBirdModel()
    windows = eb.overlap_windows(arrivals_s)
    return FigureData(
        figure_id="figure2",
        title="Potential for computation-communication overlap",
        application="model",
        payload={
            "threads": np.array([w.thread for w in windows]),
            "arrival_s": np.array([w.arrival_s for w in windows]),
            "window_s": np.array([w.window_s for w in windows]),
            "total_overlap_s": float(sum(w.window_s for w in windows)),
        },
    )


# ----------------------------------------------------------------------
# Figure 3 — application-level histograms
# ----------------------------------------------------------------------
def figure3_histogram(dataset: TimingDataset) -> FigureData:
    """Figure 3: application-level arrival histogram with 10 µs bins."""
    bin_width = FIGURE_PARAMETERS["figure3"]["bin_width_s"]
    histogram = ThreadTimingAnalyzer(dataset).application_histogram(bin_width)
    return FigureData(
        figure_id="figure3",
        title="Application thread arrival time histogram",
        application=dataset.application,
        payload={
            "histogram": histogram,
            "peak_ms": histogram.mode_center * 1e3,
            "samples": histogram.total,
        },
    )


# ----------------------------------------------------------------------
# Figures 4 / 6 / 8 — percentile plots
# ----------------------------------------------------------------------
def percentile_figure(dataset: TimingDataset, figure_id: str) -> FigureData:
    """Shared generator of the three percentile plots."""
    series = ThreadTimingAnalyzer(dataset).percentile_series()
    return FigureData(
        figure_id=figure_id,
        title="Per-iteration thread arrival percentiles",
        application=dataset.application,
        payload={
            "series": series,
            "mean_median_ms": series.mean_median(),
            "mean_iqr_ms": float(series.iqr.mean()),
            "max_iqr_ms": float(series.iqr.max()),
            "skew_direction": series.skew_direction(),
        },
    )


def figure4_minife_percentiles(dataset: TimingDataset) -> FigureData:
    """Figure 4: MiniFE mat-vec arrival percentiles per iteration."""
    return percentile_figure(dataset, "figure4")


def figure6_minimd_percentiles(dataset: TimingDataset, warmup_iterations: int = 19) -> FigureData:
    """Figure 6: MiniMD force-loop percentiles per iteration (two-phase)."""
    data = percentile_figure(dataset, "figure6")
    series: PercentileSeries = data["series"]  # type: ignore[assignment]
    data.payload["warmup_mean_iqr_ms"] = float(series.iqr[:warmup_iterations].mean())
    data.payload["steady_mean_iqr_ms"] = float(series.iqr[warmup_iterations:].mean())
    data.payload["warmup_iterations"] = warmup_iterations
    return data


def figure8_miniqmc_percentiles(dataset: TimingDataset) -> FigureData:
    """Figure 8: MiniQMC mover percentiles per iteration."""
    return percentile_figure(dataset, "figure8")


# ----------------------------------------------------------------------
# Figures 5 / 7 / 9 — example process-iteration histograms per class
# ----------------------------------------------------------------------
def figure5_minife_classes(dataset: TimingDataset) -> FigureData:
    """Figure 5: MiniFE no-laggard vs laggard example histograms (50 µs bins)."""
    analyzer = ThreadTimingAnalyzer(dataset)
    laggards = analyzer.laggards()
    bin_width = FIGURE_PARAMETERS["figure5"]["bin_width_s"]
    payload: Dict[str, object] = {
        "laggard_fraction": laggards.laggard_fraction,
        "no_laggard_fraction": 1.0 - laggards.laggard_fraction,
    }
    for cls, label in ((IterationClass.NO_LAGGARD, "no_laggard"), (IterationClass.LAGGARD, "laggard")):
        hist = analyzer.exemplar_histogram(cls, bin_width)
        payload[f"{label}_histogram"] = hist
        payload[f"{label}_exemplar"] = laggards.exemplar(cls)
    return FigureData(
        figure_id="figure5",
        title="MiniFE thread arrival distribution classes",
        application=dataset.application,
        payload=payload,
    )


def figure7_minimd_classes(dataset: TimingDataset, warmup_iterations: int = 19) -> FigureData:
    """Figure 7: MiniMD initial / no-laggard / laggard example histograms."""
    analyzer = ThreadTimingAnalyzer(dataset)
    wide_bin = FIGURE_PARAMETERS["figure7a"]["bin_width_s"]
    tight_bin = FIGURE_PARAMETERS["figure7bc"]["bin_width_s"]
    laggards = analyzer.laggards()

    # (a) initial behaviour: any process-iteration from the warm-up phase
    warmup_keys = [key for key in laggards.keys if key[-1] < warmup_iterations]
    initial_hist = (
        analyzer.process_iteration_histogram(warmup_keys[len(warmup_keys) // 2], wide_bin)
        if warmup_keys
        else None
    )

    # (b)/(c): post-warm-up laggard statistics
    steady_indices = [i for i, key in enumerate(laggards.keys) if key[-1] >= warmup_iterations]
    steady_has_laggard = laggards.has_laggard[steady_indices]
    steady_fraction = float(np.mean(steady_has_laggard)) if steady_indices else 0.0

    def steady_exemplar(want_laggard: bool):
        candidates = [
            laggards.keys[i]
            for i in steady_indices
            if bool(laggards.has_laggard[i]) == want_laggard
        ]
        return candidates[len(candidates) // 2] if candidates else None

    payload: Dict[str, object] = {
        "initial_histogram": initial_hist,
        "steady_laggard_fraction": steady_fraction,
        "steady_no_laggard_fraction": 1.0 - steady_fraction,
        "warmup_iterations": warmup_iterations,
    }
    for want, label in ((False, "no_laggard"), (True, "laggard")):
        key = steady_exemplar(want)
        payload[f"{label}_exemplar"] = key
        payload[f"{label}_histogram"] = (
            analyzer.process_iteration_histogram(key, tight_bin) if key is not None else None
        )
    return FigureData(
        figure_id="figure7",
        title="MiniMD thread arrival distribution classes",
        application=dataset.application,
        payload=payload,
    )


def figure9_miniqmc_histogram(dataset: TimingDataset) -> FigureData:
    """Figure 9: a representative MiniQMC process-iteration histogram (1 ms bins)."""
    analyzer = ThreadTimingAnalyzer(dataset)
    bin_width = FIGURE_PARAMETERS["figure9"]["bin_width_s"]
    laggards = analyzer.laggards()
    key = laggards.exemplar(IterationClass.WIDE) or laggards.keys[len(laggards.keys) // 2]
    histogram = analyzer.process_iteration_histogram(key, bin_width)
    return FigureData(
        figure_id="figure9",
        title="MiniQMC thread arrival distribution example",
        application=dataset.application,
        payload={
            "histogram": histogram,
            "exemplar": key,
            "spread_ms": histogram.spread() * 1e3,
        },
    )


#: Registry used by the CLI runner: figure id → (applications, generator).
FIGURE_GENERATORS = {
    "figure3": (("minife", "minimd", "miniqmc"), figure3_histogram),
    "figure4": (("minife",), figure4_minife_percentiles),
    "figure5": (("minife",), figure5_minife_classes),
    "figure6": (("minimd",), figure6_minimd_percentiles),
    "figure7": (("minimd",), figure7_minimd_classes),
    "figure8": (("miniqmc",), figure8_miniqmc_percentiles),
    "figure9": (("miniqmc",), figure9_miniqmc_histogram),
}
