"""The streaming campaign session facade.

:class:`CampaignSession` is the front door of the campaign layer.  One
session wraps one :class:`~repro.experiments.config.CampaignConfig` and
unifies what used to be three module-level functions behind a fluent API::

    >>> from repro.experiments import CampaignConfig, CampaignSession
    >>> session = CampaignSession(CampaignConfig.smoke())
    >>> report = session.run("minife").analyze().report()

Behind ``run()`` the session resolves the configured backend from the
registry (:mod:`repro.experiments.backends`), fans the backend's shards out
across the parallel executor (:mod:`repro.experiments.executor`) when
``config.max_workers > 1``, and hands back a :class:`CampaignResult` that
keeps the shards and merges them into a dense
:class:`~repro.core.timing.TimingDataset` only on demand.  ``stream()``
exposes the same execution as a lazy shard iterator for memory-bounded
consumers.

``analyze(analyses=[...])`` drives the streaming analysis engine
(:mod:`repro.analysis`): the campaign's shards are folded through the
requested registered passes — in parallel, with only per-pass partial
states returning from the workers — and the merged dataset is never
materialised.

With a ``cache_dir``, results are cached on disk through
:mod:`repro.io.dataset_io`, keyed by a stable hash of everything that
determines the samples (:func:`config_cache_key`) — re-running an identical
configuration loads the ``.npz`` instead of recomputing 768 000 samples.
Streaming analyses get their own cache layer: each pass's *finalized
product* is pickled under a key derived from (config hash, pass name, pass
parameters, exact flag), so repeating an ``analyze(analyses=...)`` call
loads products directly — no campaign execution, no shard folding.  The
session counts ``analysis_cache_hits`` / ``analysis_cache_misses``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.analyzer import ThreadTimingAnalyzer
from repro.core.timing import TimingDataset, TimingShard
from repro.experiments.backends import CampaignBackend, get_backend
from repro.experiments.executor import ShardExecutor

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.analysis import AnalysisPass, AnalysisResults
    from repro.core.report import FeasibilityReport
    from repro.experiments.config import CampaignConfig
    from repro.io.cache_tier import CacheTier
    from repro.io.shard_store import ShardStore


def config_cache_key(config: "CampaignConfig") -> str:
    """Stable hash of everything that determines a campaign's samples.

    Includes the full machine description (clock and noise populations) and
    the scenario's schedule override; excludes knobs that cannot change the
    data, such as ``max_workers`` (a parallel run hits the cache entry of a
    serial one) and the ``scenario`` label.
    """
    payload = {
        "application": config.application,
        "trials": config.trials,
        "processes": config.processes,
        "iterations": config.iterations,
        "threads": config.threads,
        "seed": config.seed,
        "backend": config.backend,
        "schedule": getattr(config, "schedule", None),
        "machine": dataclasses.asdict(config.machine),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def campaign_cache_path(
    cache_dir: Optional[Path], config: "CampaignConfig"
) -> Optional[Path]:
    """The ``.npz`` cache file for ``config`` under ``cache_dir``.

    Shared by :class:`CampaignSession` and the campaign service
    (:mod:`repro.service`) so both layers hit the same cache entries.
    Returns ``None`` when caching is disabled (``cache_dir is None``).
    """
    if cache_dir is None:
        return None
    return cache_dir / f"campaign_{config.application}_{config_cache_key(config)}.npz"


def campaign_store_path(
    cache_dir: Optional[Path], config: "CampaignConfig"
) -> Optional[Path]:
    """The spilled shard-store directory for ``config`` under ``cache_dir``.

    The out-of-core sibling of :func:`campaign_cache_path`, keyed by the
    same sample-determining hash so a stored campaign and a dense cached
    one describe the same data.
    """
    if cache_dir is None:
        return None
    return cache_dir / f"shards_{config.application}_{config_cache_key(config)}.store"


class CampaignResult:
    """Outcome of one application's campaign, merged on demand.

    Holds the shards the executor produced (fresh run), an already-merged
    dataset (cache hit), or a spilled
    :class:`~repro.io.shard_store.ShardStore` (out-of-core run).  Iterating
    yields the shards; :attr:`dataset` merges them — once — into the dense
    :class:`~repro.core.timing.TimingDataset` every in-memory analysis
    consumes.  Store-backed results keep nothing dense resident:
    :meth:`iter_shards` streams memory-mapped views group by group, and
    :attr:`n_samples` / :attr:`metadata` come straight from the store's
    manifest.
    """

    def __init__(
        self,
        config: "CampaignConfig",
        *,
        shards: Optional[Sequence[TimingShard]] = None,
        dataset: Optional[TimingDataset] = None,
        store: Optional["ShardStore"] = None,
        metadata: Optional[Dict[str, object]] = None,
        from_cache: bool = False,
    ) -> None:
        if shards is None and dataset is None and store is None:
            raise ValueError(
                "a result needs shards, an already-merged dataset, or a store"
            )
        self.config = config
        self.from_cache = from_cache
        self.store = store
        self._shards: Optional[Tuple[TimingShard, ...]] = (
            tuple(shards) if shards is not None else None
        )
        self._metadata = metadata
        self._dataset = dataset
        self._analyzer: Optional[ThreadTimingAnalyzer] = None

    # ------------------------------------------------------------------
    @property
    def application(self) -> str:
        return self.config.application

    @property
    def shards(self) -> Tuple[TimingShard, ...]:
        """The campaign's shards (derived from the dataset on cache hits).

        Store-backed results materialise the full shard tuple here (the
        views stay memory-mapped, but holding them keeps the whole store
        mapped) — memory-bounded consumers should prefer
        :meth:`iter_shards`.
        """
        if self._shards is None:
            if self.store is not None:
                self._shards = tuple(self.store.iter_shards())
            else:
                dataset = self.dataset
                self._shards = tuple(
                    TimingShard.from_dataset(
                        dataset.select(trial=int(trial)), trial=int(trial), process=None
                    )
                    for trial in dataset.trials
                )
        return self._shards

    def iter_shards(self) -> Iterator[TimingShard]:
        """Stream the campaign's shards with a bounded working set.

        Store-backed results stream zero-copy mmap views one group at a
        time; in-memory results just iterate what they hold.  This is the
        iteration every out-of-core consumer (analysis engine, figure
        generators) should use.
        """
        if self._shards is not None:
            return iter(self._shards)
        if self.store is not None:
            return self.store.iter_shards()
        return iter(self.shards)

    def iter_column_blocks(self):
        """Stream the campaign as columnar ``(columns, slices)`` blocks.

        The analysis engine's preferred input
        (:func:`~repro.analysis.engine.run_columnar_analyses`): store-backed
        results yield each on-disk group as one zero-copy mmap block
        (:meth:`~repro.io.shard_store.ShardStore.iter_column_blocks`);
        in-memory results wrap each shard as a single-shard block — the
        passes still take their vectorised group-by route, just one shard at
        a time.  Blocks arrive in serial (trial-major) shard order, so the
        reduction matches :meth:`iter_shards` state for state.
        """
        from repro.core.aggregation import ShardSlice

        if self._shards is None and self.store is not None:
            yield from self.store.iter_column_blocks()
            return
        for shard in self.iter_shards():
            yield shard.columns, [
                ShardSlice(
                    trial=shard.trial,
                    process=shard.process,
                    start=0,
                    stop=shard.n_samples,
                )
            ]

    def __iter__(self) -> Iterator[TimingShard]:
        return self.iter_shards()

    @property
    def dataset(self) -> TimingDataset:
        """The dense timing dataset (shards merged on first access)."""
        if self._dataset is None:
            if self._shards is not None:
                self._dataset = TimingDataset.merge(
                    self._shards, metadata=self._metadata
                )
            else:
                self._dataset = TimingDataset.merge(
                    self.store.iter_shards(), metadata=self.metadata
                )
        return self._dataset

    @property
    def metadata(self) -> Dict[str, object]:
        """Campaign metadata, without forcing a shard merge."""
        if self._metadata is not None:
            return dict(self._metadata)
        if self._dataset is not None:
            return dict(self._dataset.metadata)
        if self.store is not None:
            return self.store.metadata
        return {}

    @property
    def n_samples(self) -> int:
        if self._dataset is None and self.store is not None:
            return self.store.n_samples
        return self.dataset.n_samples

    # ------------------------------------------------------------------
    def analyze(self, **kwargs) -> ThreadTimingAnalyzer:
        """The §4 analysis driver for this campaign's dataset (cached)."""
        if self._analyzer is None or kwargs:
            analyzer = ThreadTimingAnalyzer(self.dataset, **kwargs)
            if kwargs:
                return analyzer
            self._analyzer = analyzer
        return self._analyzer

    def report(self, include_earlybird: bool = True) -> "FeasibilityReport":
        """Shortcut for ``analyze().report()``."""
        return self.analyze().report(include_earlybird=include_earlybird)

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the merged dataset as ``.npz`` (see :mod:`repro.io`)."""
        from repro.io.dataset_io import save_dataset

        return save_dataset(self.dataset, path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        origin = "cache" if self.from_cache else "run"
        return f"CampaignResult({self.application!r}, from={origin})"


class CampaignSession:
    """Fluent, cache-aware driver of one or more measurement campaigns.

    Parameters
    ----------
    config:
        Base campaign configuration.  ``run("minimd")`` retargets it with
        :meth:`~repro.experiments.config.CampaignConfig.for_application`.
    cache_dir:
        Directory for config-hash-keyed ``.npz`` result caching; ``None``
        (default) disables caching.
    cache_max_bytes:
        Size budget of the cache tier: every write is admitted through a
        :class:`~repro.io.cache_tier.CacheTier` that LRU-evicts entries over
        budget.  ``None`` defers to ``$REPRO_CACHE_MAX_BYTES`` and, failing
        that, leaves the tier unbounded.
    executor_mode:
        Worker-pool flavour for ``max_workers > 1``: ``"process"`` (default)
        or ``"thread"``.
    """

    def __init__(
        self,
        config: "CampaignConfig",
        *,
        cache_dir: Optional[Union[str, Path]] = None,
        cache_max_bytes: Optional[int] = None,
        executor_mode: str = "process",
    ) -> None:
        self.config = config
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.executor_mode = executor_mode
        self.cache_tier: Optional["CacheTier"] = None
        if self.cache_dir is not None:
            from repro.io.cache_tier import CacheTier

            self.cache_tier = CacheTier(self.cache_dir, max_bytes=cache_max_bytes)
        self._results: Dict[str, CampaignResult] = {}
        #: finalized-pass-product cache counters (only ticked when a
        #: ``cache_dir`` is configured; see :meth:`analyze`)
        self.analysis_cache_hits = 0
        self.analysis_cache_misses = 0

    # ------------------------------------------------------------------
    # configuration plumbing
    # ------------------------------------------------------------------
    def config_for(self, application: Optional[str] = None) -> "CampaignConfig":
        """The session config, retargeted at ``application`` if given."""
        if application is None or application == self.config.application:
            return self.config
        return self.config.for_application(application)

    def backend_for(self, application: Optional[str] = None) -> CampaignBackend:
        return get_backend(self.config_for(application).backend)

    def cache_key(self, application: Optional[str] = None) -> str:
        return config_cache_key(self.config_for(application))

    def _cache_path(self, config: "CampaignConfig") -> Optional[Path]:
        return campaign_cache_path(self.cache_dir, config)

    def _store_path(self, config: "CampaignConfig") -> Optional[Path]:
        return campaign_store_path(self.cache_dir, config)

    def _admit(self, path: Optional[Path]) -> None:
        """Register a fresh cache write with the tier (evicting over budget)."""
        if self.cache_tier is not None and path is not None:
            self.cache_tier.admit(path)

    def _executor(self) -> ShardExecutor:
        return ShardExecutor(mode=self.executor_mode)

    # ------------------------------------------------------------------
    # streaming-analysis product cache
    # ------------------------------------------------------------------
    @classmethod
    def _describe_param(cls, value: object, _depth: int = 0) -> Optional[str]:
        """Stable, collision-resistant description of one pass parameter.

        Arrays are digested over their full contents (``repr`` would elide
        large arrays to ``...``, colliding distinct parameters).  Objects
        without a custom ``__repr__`` — e.g. the earlybird pass's
        ``EarlyBirdModel`` — are described from their class name and
        attributes (``__dict__`` or ``__slots__``) instead of the default
        ``<... object at 0x...>`` repr, whose embedded memory address would
        change every run and make the cross-session cache permanently miss.
        Everything else round-trips through ``repr``, which is stable for
        the primitive thresholds/widths the built-in passes hold.

        Returns ``None`` when no stable description exists (an attribute-less
        default-repr object, or pathological nesting): the caller then skips
        caching for that pass — an honest recompute beats both a permanent
        silent miss and a key collision.
        """
        import numpy as np

        if isinstance(value, np.ndarray):
            digest = hashlib.sha256(np.ascontiguousarray(value).tobytes())
            return f"ndarray{value.shape}:{value.dtype}:{digest.hexdigest()}"
        if _depth < 6 and isinstance(value, (list, tuple, set, frozenset)):
            items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
            parts = [cls._describe_param(item, _depth + 1) for item in items]
            if any(part is None for part in parts):
                return None
            return f"{type(value).__qualname__}[{';'.join(parts)}]"
        if _depth < 6 and isinstance(value, dict):
            parts = []
            for name, item in sorted(value.items(), key=lambda kv: repr(kv[0])):
                described = cls._describe_param(item, _depth + 1)
                if described is None:
                    return None
                parts.append(f"{name!r}:{described}")
            return f"dict{{{';'.join(parts)}}}"
        if type(value).__repr__ is not object.__repr__:
            return repr(value)
        attrs = getattr(value, "__dict__", None)
        if attrs is None:
            slots = [
                name
                for klass in type(value).__mro__
                for name in (getattr(klass, "__slots__", ()) or ())
            ]
            if not slots:
                return None
            attrs = {name: getattr(value, name) for name in slots if hasattr(value, name)}
        if _depth >= 6:
            return None
        parts = []
        for name, attr in sorted(attrs.items()):
            described = cls._describe_param(attr, _depth + 1)
            if described is None:
                return None
            parts.append(f"{name}={described}")
        return f"{type(value).__qualname__}({';'.join(parts)})"

    def _analysis_cache_path(
        self, config: "CampaignConfig", analysis_pass: "AnalysisPass", exact: bool
    ) -> Optional[Path]:
        """Cache file of one pass's finalized product, or ``None`` without a
        ``cache_dir``.  The key hashes everything that determines the
        product: the campaign's sample-determining config hash, the pass
        name, the pass's parameters (its instance attributes) and the
        exact/sketch flag."""
        if self.cache_dir is None:
            return None
        descriptions = []
        for name, value in sorted(vars(analysis_pass).items()):
            described = self._describe_param(value)
            if described is None:
                import warnings

                warnings.warn(
                    f"analysis pass {analysis_pass.name!r}: parameter {name!r} "
                    f"({type(value).__qualname__}) has no stable description "
                    "(define __repr__ on it); skipping the product cache for "
                    "this pass",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return None
            descriptions.append(f"{name}={described}")
        params = ";".join(descriptions)
        blob = "|".join(
            (config_cache_key(config), analysis_pass.name, params, str(bool(exact)))
        )
        key = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
        return (
            self.cache_dir
            / f"analysis_{config.application}_{analysis_pass.name}_{key}.pkl"
        )

    def _load_analysis_product(self, path: Optional[Path]) -> Tuple[bool, object]:
        if path is None or not path.exists():
            return False, None
        import pickle

        try:
            with path.open("rb") as handle:
                return True, pickle.load(handle)
        except Exception:  # corrupt/stale entry: recompute and overwrite
            return False, None

    def _store_analysis_product(self, path: Optional[Path], product: object) -> None:
        if path is None:
            return
        import pickle

        path.parent.mkdir(parents=True, exist_ok=True)
        # temp + replace like every other cache write: a crashed writer
        # cannot leave a truncated pickle at the final path
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(product, handle)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        self._admit(path)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def cached(self, application: Optional[str] = None) -> Optional[CampaignResult]:
        """Load one application's campaign from the result cache.

        Returns ``None`` on a miss (or without a ``cache_dir``), leaving the
        caller free to execute the campaign however it likes — see
        :meth:`adopt` for handing the result back.
        """
        config = self.config_for(application)
        cache_path = self._cache_path(config)
        if cache_path is None:
            return None
        from repro.io.dataset_io import try_load_dataset

        dataset = try_load_dataset(cache_path)
        if dataset is None:  # missing — or corrupt, removed for recompute
            return None
        if self.cache_tier is not None:
            self.cache_tier.touch(cache_path)
        # the cache key deliberately excludes the scenario label (it
        # cannot change the samples), so a hit may carry the label of
        # whichever scenario populated the entry — re-stamp it
        scenario = getattr(config, "scenario", None)
        if dataset.metadata.get("scenario") != scenario:
            dataset = dataset.with_metadata(scenario=scenario)
        result = CampaignResult(config, dataset=dataset, from_cache=True)
        self._results[config.application] = result
        return result

    def cached_store(
        self, application: Optional[str] = None
    ) -> Optional[CampaignResult]:
        """Reopen a previously spilled, finalized shard store as a result.

        The out-of-core sibling of :meth:`cached`: returns a store-backed
        :class:`CampaignResult` when a complete store directory exists for
        the configuration, ``None`` otherwise.
        """
        config = self.config_for(application)
        store_path = self._store_path(config)
        if store_path is None:
            return None
        from repro.io.shard_store import MANIFEST_NAME, ShardStore

        if not (store_path / MANIFEST_NAME).exists():
            return None
        try:
            store = ShardStore.open(store_path)
            if not store.complete:
                return None  # an interrupted writer's leftovers; rebuild
        except Exception:
            return None
        if self.cache_tier is not None:
            self.cache_tier.touch(store_path)
        result = CampaignResult(config, store=store, from_cache=True)
        self._results[config.application] = result
        return result

    def adopt(
        self, dataset: TimingDataset, application: Optional[str] = None
    ) -> CampaignResult:
        """Store an externally-executed dataset as this session's result.

        Used by grouped campaign execution
        (:meth:`~repro.scenarios.scenario.ScenarioMatrix.run` running several
        compatible configs through one
        :meth:`~repro.experiments.backends.CampaignTensorBackend.run_many`
        tensor pass): the dataset is cached and registered exactly as if
        :meth:`run` had produced it.
        """
        config = self.config_for(application)
        result = CampaignResult(config, dataset=dataset)
        cache_path = self._cache_path(config)
        if cache_path is not None:
            result.save(cache_path)
            self._admit(cache_path)
        self._results[config.application] = result
        return result

    def run(
        self,
        application: Optional[str] = None,
        *,
        use_cache: bool = True,
        store: Union[None, bool, str, Path, "ShardStore"] = None,
        spill_threshold_bytes: Optional[int] = None,
    ) -> CampaignResult:
        """Run (or load from cache) one application's campaign.

        ``store`` selects the out-of-core spill path: shards land in a
        :class:`~repro.io.shard_store.ShardStore` as the executor produces
        them instead of accumulating in memory, and the returned result is
        store-backed (stream it with
        :meth:`CampaignResult.iter_shards`).

        * ``None`` (default) — in-memory run with the usual ``.npz`` cache.
        * ``True`` — auto-managed store under ``cache_dir`` (required):
          built in a sibling temp directory, finalized, then atomically
          published and admitted to the cache tier; with ``use_cache`` an
          existing complete store is reopened instead of re-running.
        * a path — explicit store directory (complete stores are reused
          under ``use_cache``, anything else is rebuilt in place).
        * a :class:`~repro.io.shard_store.ShardStore` — caller-managed;
          shards are appended and the store finalized, nothing published.

        ``spill_threshold_bytes`` bounds the store's in-memory buffer (the
        RAM-budget knob); ``None`` keeps the store default.
        """
        config = self.config_for(application)
        backend = get_backend(config.backend)
        if store is None:
            if use_cache:
                result = self.cached(application)
                if result is not None:
                    return result
            shards = self._executor().run(backend, config)
            result = CampaignResult(
                config, shards=shards, metadata=backend.metadata(config)
            )
            cache_path = self._cache_path(config)
            if cache_path is not None:
                result.save(cache_path)
                self._admit(cache_path)
            self._results[config.application] = result
            return result
        return self._run_to_store(
            config,
            backend,
            store,
            use_cache=use_cache,
            spill_threshold_bytes=spill_threshold_bytes,
        )

    def _run_to_store(
        self,
        config: "CampaignConfig",
        backend: CampaignBackend,
        store: Union[bool, str, Path, "ShardStore"],
        *,
        use_cache: bool,
        spill_threshold_bytes: Optional[int],
    ) -> CampaignResult:
        """The out-of-core arm of :meth:`run` (see its ``store`` docs)."""
        from repro.io.shard_store import (
            DEFAULT_SPILL_THRESHOLD_BYTES,
            ShardStore,
            publish_store,
        )

        threshold = (
            DEFAULT_SPILL_THRESHOLD_BYTES
            if spill_threshold_bytes is None
            else int(spill_threshold_bytes)
        )
        metadata = backend.metadata(config)

        if isinstance(store, ShardStore):
            # caller-managed store: fill, finalize, wrap
            self._executor().run_to_store(backend, config, store)
            store.finalize(metadata)
            result = CampaignResult(config, store=store)
            self._results[config.application] = result
            return result

        if store is True:
            final = self._store_path(config)
            if final is None:
                raise ValueError(
                    "run(store=True) needs a cache_dir to place the store under"
                )
        else:
            final = Path(store)

        if use_cache:
            try:
                existing = ShardStore.open(final)
                if existing.complete:
                    if self.cache_tier is not None:
                        self.cache_tier.touch(final)
                    result = CampaignResult(config, store=existing, from_cache=True)
                    self._results[config.application] = result
                    return result
            except Exception:
                pass  # missing or unreadable — rebuild below

        # build in a sibling temp directory and publish atomically, so a
        # concurrent reader never sees a partially-built store and a race
        # between two writers resolves to one winner
        import shutil

        staged_path = final.with_name(f"{final.name}.tmp-{os.getpid()}")
        shutil.rmtree(staged_path, ignore_errors=True)
        try:
            staged = ShardStore.create(staged_path, spill_threshold_bytes=threshold)
            self._executor().run_to_store(backend, config, staged)
            staged.finalize(metadata)
            shutil.rmtree(final, ignore_errors=True)
            publish_store(staged_path, final)
        finally:
            shutil.rmtree(staged_path, ignore_errors=True)
        self._admit(final)
        result = CampaignResult(config, store=ShardStore.open(final))
        self._results[config.application] = result
        return result

    def stream(self, application: Optional[str] = None) -> Iterator[TimingShard]:
        """Lazily yield the campaign's shards in serial (trial-major) order.

        Streams straight from the executor without retaining earlier shards,
        so paper-scale campaigns can be consumed with one (trial, process)
        chunk resident at a time.  Bypasses the result cache.
        """
        config = self.config_for(application)
        backend = get_backend(config.backend)
        yield from self._executor().iter_shards(backend, config)

    def run_all(
        self,
        applications: Optional[Sequence[str]] = None,
        *,
        use_cache: bool = True,
    ) -> Dict[str, CampaignResult]:
        """Run the campaign for several applications (all three by default)."""
        if applications is None:
            from repro.apps import APPLICATIONS

            applications = sorted(APPLICATIONS)
        return {
            name: self.run(name, use_cache=use_cache) for name in applications
        }

    # ------------------------------------------------------------------
    # completed results
    # ------------------------------------------------------------------
    @property
    def results(self) -> Dict[str, CampaignResult]:
        """Results completed by this session, keyed by application."""
        return dict(self._results)

    def __getitem__(self, application: str) -> CampaignResult:
        return self._results[application]

    def __contains__(self, application: str) -> bool:
        return application in self._results

    def dataset(self, application: Optional[str] = None) -> TimingDataset:
        """Dense dataset for ``application`` (running the campaign if needed)."""
        config = self.config_for(application)
        result = self._results.get(config.application)
        if result is None:
            result = self.run(application)
        return result.dataset

    def analyze(
        self,
        application: Optional[str] = None,
        *,
        analyses: Union[None, str, Iterable[Union[str, "AnalysisPass"]]] = None,
        exact: bool = True,
    ) -> Union[ThreadTimingAnalyzer, "AnalysisResults"]:
        """Analyse ``application``'s campaign.

        Without ``analyses`` this returns the legacy in-memory
        :class:`~repro.core.analyzer.ThreadTimingAnalyzer` over the merged
        dataset (running the campaign first if needed).

        With ``analyses`` — registered pass names, pass instances, or
        ``"all"`` — the campaign's shards are streamed through the analysis
        engine instead: per-shard accumulation happens in the executor
        workers (``config.max_workers``), only the per-pass partial states
        are merged in the parent, and the merged dataset is never built.
        If this session already ran the application's campaign, the cached
        shards are re-used instead of re-executing it.  Returns the
        :class:`~repro.analysis.AnalysisResults`.  ``exact`` selects the
        bit-identical accumulators (default; exact percentiles/normality
        keep sample-sized state) versus the bounded-memory sketches
        (``exact=False``).
        """
        config = self.config_for(application)
        result = self._results.get(config.application)
        if analyses is not None:
            from repro.analysis import (
                AnalysisContext,
                AnalysisResults,
                resolve_analyses,
                run_campaign_analyses,
                run_columnar_analyses,
            )

            passes = resolve_analyses(analyses)
            products: Dict[str, object] = {}
            missing = list(passes)
            if self.cache_dir is not None:
                missing = []
                for p in passes:
                    hit, product = self._load_analysis_product(
                        self._analysis_cache_path(config, p, exact)
                    )
                    if hit:
                        products[p.name] = product
                        self.analysis_cache_hits += 1
                    else:
                        missing.append(p)
                        self.analysis_cache_misses += 1
            context: Optional[AnalysisContext] = None
            if missing:
                if result is not None:
                    # the campaign already ran in this session — fold its
                    # columns through the passes instead of re-executing it
                    context = AnalysisContext.from_config(
                        config, exact=exact, metadata=result.metadata
                    )
                    # column blocks stream (store-backed results yield each
                    # on-disk group as one zero-copy mmap block)
                    fresh = run_columnar_analyses(
                        result.iter_column_blocks(), missing, context
                    )
                else:
                    backend = get_backend(config.backend)
                    fresh = run_campaign_analyses(
                        backend,
                        config,
                        missing,
                        executor=self._executor(),
                        exact=exact,
                    )
                context = fresh.context
                for p in missing:
                    products[p.name] = fresh[p.name]
                    self._store_analysis_product(
                        self._analysis_cache_path(config, p, exact), fresh[p.name]
                    )
            if context is None:
                # every product came from the cache — rebuild the campaign
                # frame (cheap; no samples involved) for report assembly
                metadata = (
                    result.metadata
                    if result is not None
                    else get_backend(config.backend).metadata(config)
                )
                context = AnalysisContext.from_config(
                    config, exact=exact, metadata=metadata
                )
            ordered = {p.name: products[p.name] for p in passes}
            return AnalysisResults(ordered, context)
        if result is None:
            result = self.run(application)
        return result.analyze()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CampaignSession({self.config.application!r}, "
            f"backend={self.config.backend!r}, "
            f"max_workers={getattr(self.config, 'max_workers', 1)}, "
            f"results={sorted(self._results)})"
        )
