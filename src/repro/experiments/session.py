"""The streaming campaign session facade.

:class:`CampaignSession` is the front door of the campaign layer.  One
session wraps one :class:`~repro.experiments.config.CampaignConfig` and
unifies what used to be three module-level functions behind a fluent API::

    >>> from repro.experiments import CampaignConfig, CampaignSession
    >>> session = CampaignSession(CampaignConfig.smoke())
    >>> report = session.run("minife").analyze().report()

Behind ``run()`` the session resolves the configured backend from the
registry (:mod:`repro.experiments.backends`), fans the backend's shards out
across the parallel executor (:mod:`repro.experiments.executor`) when
``config.max_workers > 1``, and hands back a :class:`CampaignResult` that
keeps the shards and merges them into a dense
:class:`~repro.core.timing.TimingDataset` only on demand.  ``stream()``
exposes the same execution as a lazy shard iterator for memory-bounded
consumers.

``analyze(analyses=[...])`` drives the streaming analysis engine
(:mod:`repro.analysis`): the campaign's shards are folded through the
requested registered passes — in parallel, with only per-pass partial
states returning from the workers — and the merged dataset is never
materialised.

With a ``cache_dir``, results are cached on disk through
:mod:`repro.io.dataset_io`, keyed by a stable hash of everything that
determines the samples (:func:`config_cache_key`) — re-running an identical
configuration loads the ``.npz`` instead of recomputing 768 000 samples.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.analyzer import ThreadTimingAnalyzer
from repro.core.timing import TimingDataset, TimingShard
from repro.experiments.backends import CampaignBackend, get_backend
from repro.experiments.executor import ShardExecutor

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.analysis import AnalysisPass, AnalysisResults
    from repro.core.report import FeasibilityReport
    from repro.experiments.config import CampaignConfig


def config_cache_key(config: "CampaignConfig") -> str:
    """Stable hash of everything that determines a campaign's samples.

    Includes the full machine description (clock and noise populations) and
    the scenario's schedule override; excludes knobs that cannot change the
    data, such as ``max_workers`` (a parallel run hits the cache entry of a
    serial one) and the ``scenario`` label.
    """
    payload = {
        "application": config.application,
        "trials": config.trials,
        "processes": config.processes,
        "iterations": config.iterations,
        "threads": config.threads,
        "seed": config.seed,
        "backend": config.backend,
        "schedule": getattr(config, "schedule", None),
        "machine": dataclasses.asdict(config.machine),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class CampaignResult:
    """Outcome of one application's campaign, merged on demand.

    Holds either the shards the executor produced (fresh run) or an
    already-merged dataset (cache hit).  Iterating yields the shards;
    :attr:`dataset` merges them — once — into the dense
    :class:`~repro.core.timing.TimingDataset` every analysis consumes.
    """

    def __init__(
        self,
        config: "CampaignConfig",
        *,
        shards: Optional[Sequence[TimingShard]] = None,
        dataset: Optional[TimingDataset] = None,
        metadata: Optional[Dict[str, object]] = None,
        from_cache: bool = False,
    ) -> None:
        if shards is None and dataset is None:
            raise ValueError("a result needs shards or an already-merged dataset")
        self.config = config
        self.from_cache = from_cache
        self._shards: Optional[Tuple[TimingShard, ...]] = (
            tuple(shards) if shards is not None else None
        )
        self._metadata = metadata
        self._dataset = dataset
        self._analyzer: Optional[ThreadTimingAnalyzer] = None

    # ------------------------------------------------------------------
    @property
    def application(self) -> str:
        return self.config.application

    @property
    def shards(self) -> Tuple[TimingShard, ...]:
        """The campaign's shards (derived from the dataset on cache hits)."""
        if self._shards is None:
            dataset = self.dataset
            self._shards = tuple(
                TimingShard.from_dataset(
                    dataset.select(trial=int(trial)), trial=int(trial), process=None
                )
                for trial in dataset.trials
            )
        return self._shards

    def __iter__(self) -> Iterator[TimingShard]:
        return iter(self.shards)

    @property
    def dataset(self) -> TimingDataset:
        """The dense timing dataset (shards merged on first access)."""
        if self._dataset is None:
            self._dataset = TimingDataset.merge(self._shards, metadata=self._metadata)
        return self._dataset

    @property
    def metadata(self) -> Dict[str, object]:
        """Campaign metadata, without forcing a shard merge."""
        if self._metadata is not None:
            return dict(self._metadata)
        if self._dataset is not None:
            return dict(self._dataset.metadata)
        return {}

    @property
    def n_samples(self) -> int:
        return self.dataset.n_samples

    # ------------------------------------------------------------------
    def analyze(self, **kwargs) -> ThreadTimingAnalyzer:
        """The §4 analysis driver for this campaign's dataset (cached)."""
        if self._analyzer is None or kwargs:
            analyzer = ThreadTimingAnalyzer(self.dataset, **kwargs)
            if kwargs:
                return analyzer
            self._analyzer = analyzer
        return self._analyzer

    def report(self, include_earlybird: bool = True) -> "FeasibilityReport":
        """Shortcut for ``analyze().report()``."""
        return self.analyze().report(include_earlybird=include_earlybird)

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the merged dataset as ``.npz`` (see :mod:`repro.io`)."""
        from repro.io.dataset_io import save_dataset

        return save_dataset(self.dataset, path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        origin = "cache" if self.from_cache else "run"
        return f"CampaignResult({self.application!r}, from={origin})"


class CampaignSession:
    """Fluent, cache-aware driver of one or more measurement campaigns.

    Parameters
    ----------
    config:
        Base campaign configuration.  ``run("minimd")`` retargets it with
        :meth:`~repro.experiments.config.CampaignConfig.for_application`.
    cache_dir:
        Directory for config-hash-keyed ``.npz`` result caching; ``None``
        (default) disables caching.
    executor_mode:
        Worker-pool flavour for ``max_workers > 1``: ``"process"`` (default)
        or ``"thread"``.
    """

    def __init__(
        self,
        config: "CampaignConfig",
        *,
        cache_dir: Optional[Union[str, Path]] = None,
        executor_mode: str = "process",
    ) -> None:
        self.config = config
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.executor_mode = executor_mode
        self._results: Dict[str, CampaignResult] = {}

    # ------------------------------------------------------------------
    # configuration plumbing
    # ------------------------------------------------------------------
    def config_for(self, application: Optional[str] = None) -> "CampaignConfig":
        """The session config, retargeted at ``application`` if given."""
        if application is None or application == self.config.application:
            return self.config
        return self.config.for_application(application)

    def backend_for(self, application: Optional[str] = None) -> CampaignBackend:
        return get_backend(self.config_for(application).backend)

    def cache_key(self, application: Optional[str] = None) -> str:
        return config_cache_key(self.config_for(application))

    def _cache_path(self, config: "CampaignConfig") -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return (
            self.cache_dir
            / f"campaign_{config.application}_{config_cache_key(config)}.npz"
        )

    def _executor(self) -> ShardExecutor:
        return ShardExecutor(mode=self.executor_mode)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self, application: Optional[str] = None, *, use_cache: bool = True
    ) -> CampaignResult:
        """Run (or load from cache) one application's campaign."""
        config = self.config_for(application)
        backend = get_backend(config.backend)
        cache_path = self._cache_path(config)
        if cache_path is not None and use_cache and cache_path.exists():
            from repro.io.dataset_io import load_dataset

            dataset = load_dataset(cache_path)
            # the cache key deliberately excludes the scenario label (it
            # cannot change the samples), so a hit may carry the label of
            # whichever scenario populated the entry — re-stamp it
            scenario = getattr(config, "scenario", None)
            if dataset.metadata.get("scenario") != scenario:
                dataset = dataset.with_metadata(scenario=scenario)
            result = CampaignResult(config, dataset=dataset, from_cache=True)
        else:
            shards = self._executor().run(backend, config)
            result = CampaignResult(
                config, shards=shards, metadata=backend.metadata(config)
            )
            if cache_path is not None:
                result.save(cache_path)
        self._results[config.application] = result
        return result

    def stream(self, application: Optional[str] = None) -> Iterator[TimingShard]:
        """Lazily yield the campaign's shards in serial (trial-major) order.

        Streams straight from the executor without retaining earlier shards,
        so paper-scale campaigns can be consumed with one (trial, process)
        chunk resident at a time.  Bypasses the result cache.
        """
        config = self.config_for(application)
        backend = get_backend(config.backend)
        yield from self._executor().iter_shards(backend, config)

    def run_all(
        self,
        applications: Optional[Sequence[str]] = None,
        *,
        use_cache: bool = True,
    ) -> Dict[str, CampaignResult]:
        """Run the campaign for several applications (all three by default)."""
        if applications is None:
            from repro.apps import APPLICATIONS

            applications = sorted(APPLICATIONS)
        return {
            name: self.run(name, use_cache=use_cache) for name in applications
        }

    # ------------------------------------------------------------------
    # completed results
    # ------------------------------------------------------------------
    @property
    def results(self) -> Dict[str, CampaignResult]:
        """Results completed by this session, keyed by application."""
        return dict(self._results)

    def __getitem__(self, application: str) -> CampaignResult:
        return self._results[application]

    def __contains__(self, application: str) -> bool:
        return application in self._results

    def dataset(self, application: Optional[str] = None) -> TimingDataset:
        """Dense dataset for ``application`` (running the campaign if needed)."""
        config = self.config_for(application)
        result = self._results.get(config.application)
        if result is None:
            result = self.run(application)
        return result.dataset

    def analyze(
        self,
        application: Optional[str] = None,
        *,
        analyses: Union[None, str, Iterable[Union[str, "AnalysisPass"]]] = None,
        exact: bool = True,
    ) -> Union[ThreadTimingAnalyzer, "AnalysisResults"]:
        """Analyse ``application``'s campaign.

        Without ``analyses`` this returns the legacy in-memory
        :class:`~repro.core.analyzer.ThreadTimingAnalyzer` over the merged
        dataset (running the campaign first if needed).

        With ``analyses`` — registered pass names, pass instances, or
        ``"all"`` — the campaign's shards are streamed through the analysis
        engine instead: per-shard accumulation happens in the executor
        workers (``config.max_workers``), only the per-pass partial states
        are merged in the parent, and the merged dataset is never built.
        If this session already ran the application's campaign, the cached
        shards are re-used instead of re-executing it.  Returns the
        :class:`~repro.analysis.AnalysisResults`.  ``exact`` selects the
        bit-identical accumulators (default; exact percentiles/normality
        keep sample-sized state) versus the bounded-memory sketches
        (``exact=False``).
        """
        config = self.config_for(application)
        result = self._results.get(config.application)
        if analyses is not None:
            from repro.analysis import (
                AnalysisContext,
                run_analyses,
                run_campaign_analyses,
            )

            if result is not None:
                # the campaign already ran in this session — fold its shards
                # through the passes instead of re-executing it
                context = AnalysisContext.from_config(
                    config, exact=exact, metadata=result.metadata
                )
                return run_analyses(result.shards, analyses, context)
            backend = get_backend(config.backend)
            return run_campaign_analyses(
                backend,
                config,
                analyses,
                executor=self._executor(),
                exact=exact,
            )
        if result is None:
            result = self.run(application)
        return result.analyze()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CampaignSession({self.config.application!r}, "
            f"backend={self.config.backend!r}, "
            f"max_workers={getattr(self.config, 'max_workers', 1)}, "
            f"results={sorted(self._results)})"
        )
