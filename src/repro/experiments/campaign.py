"""Deprecated module-level campaign entry points.

The campaign execution API lives in three places since the v2 redesign:

* :mod:`repro.experiments.backends` — the pluggable backend registry
  (``vectorized`` / ``event`` / ``chunked`` built-ins, ``register_backend``
  for extensions).
* :mod:`repro.experiments.executor` — parallel sharded execution.
* :mod:`repro.experiments.session` — the :class:`CampaignSession` facade::

      CampaignSession(config).run("minife").analyze().report()

The functions below are thin deprecation shims kept so existing callers
(examples, benchmarks, downstream scripts) continue to work; they delegate to
a :class:`~repro.experiments.session.CampaignSession` and return the exact
same datasets as before.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Sequence

from repro.core.timing import TimingDataset
from repro.experiments.config import CampaignConfig
from repro.experiments.session import CampaignSession


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.experiments.campaign.{old} is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=3,
    )


def run_campaign(config: CampaignConfig) -> TimingDataset:
    """Run one application's campaign and return its timing dataset.

    .. deprecated::
        Use ``CampaignSession(config).run().dataset`` instead.
    """
    _deprecated("run_campaign", "CampaignSession(config).run().dataset")
    return CampaignSession(config).run().dataset


def run_all_campaigns(
    config: CampaignConfig, applications: Optional[Sequence[str]] = None
) -> Dict[str, TimingDataset]:
    """Run the campaign for several applications (all three by default).

    .. deprecated::
        Use ``CampaignSession(config).run_all()`` instead.
    """
    _deprecated("run_all_campaigns", "CampaignSession(config).run_all()")
    results = CampaignSession(config).run_all(applications)
    return {name: result.dataset for name, result in results.items()}


def quick_campaign(
    application: str,
    *,
    trials: int = 1,
    processes: int = 2,
    iterations: int = 25,
    threads: int = 48,
    seed: int = 7,
    backend: str = "vectorized",
) -> TimingDataset:
    """Small campaign with sensible defaults (examples, docs, tests).

    .. deprecated::
        Build a :class:`~repro.experiments.config.CampaignConfig` and use
        ``CampaignSession(config).run().dataset`` instead.
    """
    _deprecated("quick_campaign", "CampaignSession(config).run().dataset")
    config = CampaignConfig(
        application=application,
        trials=trials,
        processes=processes,
        iterations=iterations,
        threads=threads,
        seed=seed,
        backend=backend,
    )
    return CampaignSession(config).run().dataset
