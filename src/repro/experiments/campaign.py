"""Run measurement campaigns.

A campaign reproduces the paper's §3.2 procedure for one application: for
every trial and every process, run ``iterations`` instances of the
instrumented compute region on a 48-thread team and record each thread's
derived compute time.

Two execution backends produce the timings:

* ``"vectorized"`` — the application's calibrated work/cost/noise models are
  sampled directly (no event engine).  This is how full paper-scale campaigns
  (768 000 samples per application) complete in seconds.
* ``"event"`` — every thread is a process on the discrete-event engine, the
  entry/exit barriers and every noise preemption happen as events, and the
  timestamps come from the per-core monotonic clocks.  Slower; used by the
  examples and by integration tests that check the two backends agree.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.apps import APPLICATIONS, get_application
from repro.apps.base import ApplicationConfig, ProxyApplication
from repro.core.instrument import RegionInstrumenter
from repro.core.timing import TimingDataset
from repro.experiments.config import CampaignConfig
from repro.openmp.runtime import OpenMPRuntime
from repro.openmp.team import ThreadTeam
from repro.sim.random import RandomStreams


def _build_application(config: CampaignConfig) -> ProxyApplication:
    """Instantiate the configured application with campaign-sized threading."""
    app = get_application(config.application)
    app.config.n_threads = config.threads
    app.config.n_iterations = config.iterations
    return app


def _instrumenter(app: ProxyApplication, config: CampaignConfig) -> RegionInstrumenter:
    return RegionInstrumenter(
        region=app.region,
        application=app.name,
        metadata={
            "trials": config.trials,
            "processes": config.processes,
            "iterations": config.iterations,
            "threads": config.threads,
            "seed": config.seed,
            "backend": config.backend,
            "machine": config.machine.name,
            "noise_enabled": config.machine.noise_spec.enabled,
            **app.describe(),
        },
    )


# ----------------------------------------------------------------------
# vectorised backend
# ----------------------------------------------------------------------
def _run_vectorized(
    app: ProxyApplication, config: CampaignConfig, streams: RandomStreams
) -> TimingDataset:
    instrumenter = _instrumenter(app, config)
    for trial in range(config.trials):
        for process in range(config.processes):
            work_rng = streams.get(app.name, "work", trial, process)
            noise_rng = streams.get(app.name, "noise", trial, process)
            noise = config.machine.build_noise_model(noise_rng)
            app.begin_process(process, work_rng)
            for iteration in range(config.iterations):
                times = app.thread_compute_times(
                    process=process,
                    iteration=iteration,
                    rng=work_rng,
                    noise=noise,
                )
                instrumenter.record_compute_times(
                    trial=trial,
                    process=process,
                    iteration=iteration,
                    compute_times_s=times,
                )
    return instrumenter.dataset()


# ----------------------------------------------------------------------
# event-driven backend
# ----------------------------------------------------------------------
def _run_event(
    app: ProxyApplication, config: CampaignConfig, streams: RandomStreams
) -> TimingDataset:
    cluster = config.machine.build_cluster()
    placements = cluster.place_processes(config.processes, config.threads)
    instrumenter = _instrumenter(app, config)
    for trial in range(config.trials):
        clock_domain = config.machine.build_clock_domain(
            streams.get("clocks", trial)
        )
        for process in range(config.processes):
            work_rng = streams.get(app.name, "work", trial, process)
            noise_rng = streams.get(app.name, "noise", trial, process)
            team_rng = streams.get(app.name, "team", trial, process)
            noise = config.machine.build_noise_model(noise_rng)
            app.begin_process(process, work_rng)
            team = ThreadTeam(
                placements[process], clock_domain, noise, rng=team_rng
            )
            runtime = OpenMPRuntime(team)
            for iteration in range(config.iterations):
                costs = app.item_costs(process, iteration, work_rng)
                delays = app.application_delays(process, iteration, work_rng)
                execution = runtime.run_region(
                    costs,
                    schedule=app.config.schedule,
                    region=app.region,
                    iteration=iteration,
                    detailed=True,
                )
                # application-level delays act after the loop body (e.g. a
                # straggler thread's extra stall) — add them to the recorded
                # exit timestamps
                for thread in execution.threads:
                    extra_ns = int(round(delays[thread.thread_id] * 1e9))
                    instrumenter.record_thread(
                        trial=trial,
                        process=process,
                        iteration=iteration,
                        thread=thread.thread_id,
                        start_ns=thread.start_ns,
                        end_ns=thread.end_ns + extra_ns,
                    )
    return instrumenter.dataset()


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def run_campaign(config: CampaignConfig) -> TimingDataset:
    """Run one application's campaign and return its timing dataset."""
    app = _build_application(config)
    streams = RandomStreams(config.seed)
    if config.backend == "vectorized":
        return _run_vectorized(app, config, streams)
    return _run_event(app, config, streams)


def run_all_campaigns(
    config: CampaignConfig, applications: Optional[Sequence[str]] = None
) -> Dict[str, TimingDataset]:
    """Run the campaign for several applications (all three by default)."""
    names = list(applications) if applications is not None else sorted(APPLICATIONS)
    return {
        name: run_campaign(config.for_application(name)) for name in names
    }


def quick_campaign(
    application: str,
    *,
    trials: int = 1,
    processes: int = 2,
    iterations: int = 25,
    threads: int = 48,
    seed: int = 7,
    backend: str = "vectorized",
) -> TimingDataset:
    """Small campaign with sensible defaults (examples, docs, tests)."""
    config = CampaignConfig(
        application=application,
        trials=trials,
        processes=processes,
        iterations=iterations,
        threads=threads,
        seed=seed,
        backend=backend,
    )
    return run_campaign(config)
