"""Campaign runner and evaluation-section generators.

* :mod:`~repro.experiments.config` — campaign configurations (the paper's
  §3.2 setup is :meth:`CampaignConfig.paper_scale`).
* :mod:`~repro.experiments.campaign` — run a campaign for one or all
  applications, on the vectorised or event-driven execution path.
* :mod:`~repro.experiments.figures` — per-figure data generators (Fig. 1–9).
* :mod:`~repro.experiments.tables` — Table 1 and the §4.2 scalar-metric table.
* :mod:`~repro.experiments.paper` — the paper's reported values, for
  paper-vs-measured comparison.
* :mod:`~repro.experiments.runner` — the ``repro-campaign`` CLI.
"""

from repro.experiments.campaign import quick_campaign, run_all_campaigns, run_campaign
from repro.experiments.config import CampaignConfig
from repro.experiments.paper import PAPER_REFERENCE
from repro.experiments.tables import section4_metrics_table, table1

__all__ = [
    "CampaignConfig",
    "run_campaign",
    "run_all_campaigns",
    "quick_campaign",
    "table1",
    "section4_metrics_table",
    "PAPER_REFERENCE",
]
