"""Campaign execution API and evaluation-section generators.

* :mod:`~repro.experiments.config` — campaign configurations (the paper's
  §3.2 setup is :meth:`CampaignConfig.paper_scale`).
* :mod:`~repro.experiments.backends` — the pluggable execution-backend
  registry (``vectorized`` / ``batched`` / ``event`` / ``chunked`` built-ins,
  :func:`register_backend` for extensions).
* :mod:`~repro.experiments.executor` — parallel sharded execution
  (:class:`ShardExecutor`); bit-identical to serial at any worker count.
* :mod:`~repro.experiments.session` — :class:`CampaignSession`, the fluent
  front door: ``CampaignSession(config).run("minife").analyze().report()``,
  shard streaming via ``stream()``, config-hash-keyed result caching.
* :mod:`~repro.experiments.campaign` — deprecated module-level shims
  (``run_campaign`` & friends) delegating to the session.
* :mod:`~repro.experiments.figures` — per-figure data generators (Fig. 1–9).
* :mod:`~repro.experiments.tables` — Table 1 and the §4.2 scalar-metric table.
* :mod:`~repro.experiments.paper` — the paper's reported values, for
  paper-vs-measured comparison.
* :mod:`~repro.experiments.runner` — the ``repro-campaign`` CLI (also
  ``python -m repro``), including ``--scenario`` / ``--list-scenarios``
  backed by the :mod:`repro.scenarios` registries.
"""

from repro.experiments.backends import (
    CampaignBackend,
    ShardSpec,
    available_backends,
    get_backend,
    register_backend,
)
from repro.experiments.campaign import quick_campaign, run_all_campaigns, run_campaign
from repro.experiments.config import CampaignConfig
from repro.experiments.executor import ShardExecutor
from repro.experiments.paper import PAPER_REFERENCE
from repro.experiments.session import (
    CampaignResult,
    CampaignSession,
    campaign_cache_path,
    campaign_store_path,
    config_cache_key,
)
from repro.experiments.tables import section4_metrics_table, table1

__all__ = [
    "CampaignConfig",
    "CampaignSession",
    "CampaignResult",
    "CampaignBackend",
    "ShardSpec",
    "ShardExecutor",
    "register_backend",
    "get_backend",
    "available_backends",
    "config_cache_key",
    "campaign_cache_path",
    "campaign_store_path",
    "run_campaign",
    "run_all_campaigns",
    "quick_campaign",
    "table1",
    "section4_metrics_table",
    "PAPER_REFERENCE",
]
