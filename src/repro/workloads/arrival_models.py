"""Parametric per-thread arrival-time models.

Every model implements :meth:`ArrivalModel.sample`: given a thread count and
a random generator, produce one process-iteration's arrival vector (seconds).
The models correspond to the distribution families discussed in the paper and
its related work (Grant et al.'s single-laggard assumption, Temucin et al.'s
normal-distribution micro-benchmarks, the wide/normal/laggard classes of
§4.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np


class ArrivalModel(ABC):
    """A generator of per-thread arrival vectors."""

    @abstractmethod
    def sample(self, n_threads: int, rng: np.random.Generator) -> np.ndarray:
        """One arrival vector of length ``n_threads`` (seconds, non-negative)."""

    def sample_many(
        self, n_groups: int, n_threads: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Matrix of ``n_groups`` arrival vectors."""
        if n_groups < 1:
            raise ValueError("n_groups must be >= 1")
        return np.stack([self.sample(n_threads, rng) for _ in range(n_groups)])

    @staticmethod
    def _validate(n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")


@dataclass(frozen=True)
class NormalArrival(ArrivalModel):
    """Independent normal arrivals (Temucin et al.'s benchmark assumption)."""

    mean_s: float = 25.0e-3
    sd_s: float = 0.5e-3

    def sample(self, n_threads: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(n_threads)
        draws = rng.normal(self.mean_s, self.sd_s, size=n_threads)
        return np.clip(draws, 0.0, None)


@dataclass(frozen=True)
class UniformArrival(ArrivalModel):
    """Arrivals uniform over ``[low_s, high_s]``."""

    low_s: float = 20.0e-3
    high_s: float = 30.0e-3

    def sample(self, n_threads: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(n_threads)
        if self.high_s < self.low_s:
            raise ValueError("high_s must be >= low_s")
        return rng.uniform(self.low_s, self.high_s, size=n_threads)


@dataclass(frozen=True)
class LaggardArrival(ArrivalModel):
    """A tight normal bulk plus ``n_laggards`` threads delayed by ``laggard_delay_s``.

    The single-laggard case (default) is the assumption of the original
    partitioned-communication (finepoints) analysis.
    """

    mean_s: float = 25.0e-3
    sd_s: float = 0.1e-3
    laggard_delay_s: float = 5.0e-3
    n_laggards: int = 1

    def sample(self, n_threads: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(n_threads)
        if not 0 <= self.n_laggards <= n_threads:
            raise ValueError("n_laggards must be within [0, n_threads]")
        draws = np.clip(rng.normal(self.mean_s, self.sd_s, size=n_threads), 0.0, None)
        if self.n_laggards:
            victims = rng.choice(n_threads, size=self.n_laggards, replace=False)
            draws[victims] += self.laggard_delay_s
        return draws


@dataclass(frozen=True)
class BimodalArrival(ArrivalModel):
    """Two normal populations (e.g. boundary vs interior work assignments)."""

    early_mean_s: float = 24.0e-3
    late_mean_s: float = 26.0e-3
    sd_s: float = 0.1e-3
    early_fraction: float = 0.2

    def sample(self, n_threads: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(n_threads)
        if not 0.0 <= self.early_fraction <= 1.0:
            raise ValueError("early_fraction must be in [0, 1]")
        n_early = int(round(self.early_fraction * n_threads))
        means = np.full(n_threads, self.late_mean_s)
        means[:n_early] = self.early_mean_s
        rng.shuffle(means)
        return np.clip(rng.normal(means, self.sd_s), 0.0, None)


@dataclass(frozen=True)
class SkewedArrival(ArrivalModel):
    """Right-skewed (lognormal) arrivals: a minority of slow threads."""

    median_s: float = 25.0e-3
    sigma: float = 0.05

    def sample(self, n_threads: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(n_threads)
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        return self.median_s * np.exp(rng.normal(0.0, self.sigma, size=n_threads))


@dataclass(frozen=True)
class TwoPhaseArrival(ArrivalModel):
    """Iteration-dependent model: a wide warm-up phase then a tight phase.

    Mirrors MiniMD's Figure-6 behaviour.  ``sample`` draws from the tight
    phase; use :meth:`sample_iteration` when the iteration index matters.
    """

    warmup_iterations: int = 19
    warmup_model: ArrivalModel = UniformArrival(24.5e-3, 26.5e-3)
    steady_model: ArrivalModel = NormalArrival(24.74e-3, 0.12e-3)

    def sample(self, n_threads: int, rng: np.random.Generator) -> np.ndarray:
        return self.steady_model.sample(n_threads, rng)

    def sample_iteration(
        self, iteration: int, n_threads: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Arrival vector for a specific application iteration."""
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        model = (
            self.warmup_model if iteration < self.warmup_iterations else self.steady_model
        )
        return model.sample(n_threads, rng)
