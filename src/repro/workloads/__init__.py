"""Synthetic arrival-time workloads.

Parametric generators of thread-arrival distributions (normal, single
laggard, uniform, bimodal, two-phase, ...) used by:

* unit/property tests of the analysis layer (known ground truth),
* the ablation benchmarks (strategy behaviour under controlled
  distributions — the same methodology as Temucin et al.'s partitioned
  communication micro-benchmarks, which the paper cites as the consumer of
  exactly this kind of distribution assumption), and
* the synthetic "fourth application" in the examples.
"""

from repro.workloads.arrival_models import (
    ArrivalModel,
    BimodalArrival,
    LaggardArrival,
    NormalArrival,
    SkewedArrival,
    TwoPhaseArrival,
    UniformArrival,
)
from repro.workloads.synthetic import SyntheticApp, SyntheticConfig

__all__ = [
    "ArrivalModel",
    "NormalArrival",
    "UniformArrival",
    "LaggardArrival",
    "BimodalArrival",
    "SkewedArrival",
    "TwoPhaseArrival",
    "SyntheticApp",
    "SyntheticConfig",
]
