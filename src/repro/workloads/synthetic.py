"""A synthetic proxy application driven by an arrival model.

Useful for tests (known ground truth for every analysis metric) and for
examples exploring "what if my application's threads arrived like X?" — the
question an application developer would ask before restructuring code for
early-bird communication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.apps.base import ApplicationConfig, ProxyApplication
from repro.workloads.arrival_models import ArrivalModel, NormalArrival, TwoPhaseArrival


@dataclass
class SyntheticConfig(ApplicationConfig):
    """Configuration of the synthetic application."""

    model: ArrivalModel = field(default_factory=NormalArrival)
    label: str = "synthetic"


class SyntheticApp(ProxyApplication):
    """Proxy application whose per-thread times come straight from a model."""

    name = "synthetic"
    region = "synthetic"

    def __init__(self, config: Optional[SyntheticConfig] = None) -> None:
        super().__init__(config if config is not None else SyntheticConfig())
        self.config: SyntheticConfig
        self.name = self.config.label

    # ------------------------------------------------------------------
    def item_costs(
        self, process: int, iteration: int, rng: np.random.Generator
    ) -> np.ndarray:
        """One loop item per thread whose cost is the modelled arrival time."""
        model = self.config.model
        if isinstance(model, TwoPhaseArrival):
            return model.sample_iteration(iteration, self.config.n_threads, rng)
        return model.sample(self.config.n_threads, rng)

    # ------------------------------------------------------------------
    def run_reference_kernel(self, rng: np.random.Generator) -> Dict[str, float]:
        """No numerical kernel: report the model's sample statistics instead."""
        sample = self.item_costs(0, self.config.n_iterations - 1, rng)
        return {
            "mean_s": float(sample.mean()),
            "std_s": float(sample.std()),
            "min_s": float(sample.min()),
            "max_s": float(sample.max()),
        }
