"""``python -m repro`` — entry point aliasing the ``repro-campaign`` CLI.

Keeps the campaign runner reachable without installing console scripts
(``PYTHONPATH=src python -m repro --list-scenarios``), which is how the CI
scenario-matrix job drives it.
"""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
