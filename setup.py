"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools/pip lack
the ``wheel`` package required by PEP 517 editable builds (pip then falls back
to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
