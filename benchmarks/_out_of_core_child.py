"""Subprocess worker of ``bench_out_of_core.py`` (not a benchmark itself).

Runs one campaign either fully in memory or through the spillable
:class:`~repro.io.shard_store.ShardStore`, streams every shard through a
sha256, and prints one JSON line with the process's *own* peak RSS
(``ru_maxrss``) — the whole point of the subprocess: the parent's high-water
mark is cumulative across scales, a child's is exactly one measurement.

The digest is computed the same way in both modes (per-shard
``compute_time_s`` bytes in campaign order), so equal digests mean the
spilled campaign is bit-identical to the in-memory one.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.experiments.config import CampaignConfig
from repro.experiments.session import CampaignSession


def measure(args: argparse.Namespace) -> dict:
    with tempfile.TemporaryDirectory(dir=args.workdir or None) as tmp:
        config = CampaignConfig(
            application=args.application,
            trials=args.trials,
            processes=args.processes,
            iterations=args.iterations,
            threads=args.threads,
            seed=args.seed,
            backend=args.backend,
            max_workers=args.max_workers,
        )
        session = CampaignSession(config, cache_dir=Path(tmp) / "cache")
        start = time.perf_counter()
        if args.mode == "ooc":
            result = session.run(
                args.application,
                use_cache=False,
                store=True,
                spill_threshold_bytes=args.spill_mb * 2**20,
            )
            shards = result.store.iter_shards()
        else:
            result = session.run(args.application, use_cache=False)
            shards = iter(result.shards)
        digest = hashlib.sha256()
        samples = 0
        for shard in shards:
            column = np.ascontiguousarray(
                shard.columns["compute_time_s"], dtype=np.float64
            )
            digest.update(column.tobytes())
            samples += column.size
        elapsed = time.perf_counter() - start
    return {
        "mode": args.mode,
        "trials": args.trials,
        "workers": args.max_workers,
        "samples": samples,
        "elapsed_s": elapsed,
        "samples_per_second": samples / elapsed,
        # Linux reports ru_maxrss in kilobytes; chunk-parallel runs fold in
        # forked pool workers, so take the max over the (by now reaped)
        # children as well — the budget bounds every process, not just the
        # parent
        "peak_rss_mb": max(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
        ) / 1024,
        "digest": digest.hexdigest(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=("memory", "ooc"), required=True)
    parser.add_argument("--application", default="minife")
    parser.add_argument("--trials", type=int, required=True)
    parser.add_argument("--processes", type=int, default=2)
    parser.add_argument("--iterations", type=int, default=130)
    parser.add_argument("--threads", type=int, default=48)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--backend", default="campaign")
    parser.add_argument("--max-workers", type=int, default=1)
    parser.add_argument("--spill-mb", type=int, default=8)
    parser.add_argument("--workdir", default=None)
    json.dump(measure(parser.parse_args(argv)), sys.stdout)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
