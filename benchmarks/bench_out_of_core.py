"""Out-of-core shard store: peak RSS and throughput vs campaign scale.

Each measurement runs in a subprocess (``_out_of_core_child.py``) so its
``ru_maxrss`` is exactly one campaign's high-water mark, then reports:

* ``peak_rss_mb`` — the head-line number: spilled campaigns hold ~one
  shard-store group in memory regardless of campaign size, while the
  in-memory path grows linearly with the sample count;
* ``samples_per_second`` and the streamed sha256 ``digest`` — equal digests
  between modes prove the spill path is bit-identical to in-memory.

Scales are multiples of a ~50 k-sample base campaign on the trials axis
(1x / 10x / 100x — the 100x campaign is ~5 M samples, the same growth
factor the paper's campaign would need for 100x more trials).

Two CI guards ride along (run without ``--benchmark-only`` in the guard
step): the 100x spilled campaign must stay inside ``MEMORY_BUDGET_MB``,
and at 1x the spill path must stay within 2x of in-memory throughput while
matching its digest bit-for-bit.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from functools import lru_cache
from pathlib import Path

import pytest

#: base campaign (trials=BASE_TRIALS): 4 x 2 x 130 x 48 = 49 920 samples
BASE_TRIALS = 4
SCALE_FACTORS = (1, 10, 100)
#: hard ceiling for the 100x spilled campaign's peak RSS; the interpreter
#: plus numpy alone cost ~80 MB, the measured spill path ~90 MB, while the
#: in-memory 100x campaign needs ~650 MB
MEMORY_BUDGET_MB = 256
#: the spill path may cost at most this slowdown factor at 1x
THROUGHPUT_FACTOR = 2.0

_CHILD = Path(__file__).with_name("_out_of_core_child.py")


@lru_cache(maxsize=None)
def _measure(mode: str, factor: int, workers: int = 1) -> dict:
    """Run one child measurement (cached per process: guards reuse bench runs)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    output = subprocess.run(
        [
            sys.executable,
            str(_CHILD),
            "--mode",
            mode,
            "--trials",
            str(BASE_TRIALS * factor),
            "--max-workers",
            str(workers),
        ],
        check=True,
        capture_output=True,
        text=True,
        env=env,
    ).stdout
    return json.loads(output)


def _record(benchmark, mode: str, factor: int) -> dict:
    result = benchmark.pedantic(
        _measure, args=(mode, factor), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "mode": mode,
            "scale_factor": factor,
            "samples": result["samples"],
            "samples_per_second": result["samples_per_second"],
            "peak_rss_mb": result["peak_rss_mb"],
        }
    )
    return result


@pytest.mark.benchmark(group="out-of-core")
@pytest.mark.parametrize("factor", SCALE_FACTORS)
def test_out_of_core_scaling(benchmark, factor):
    """Spilled campaigns at growing scale: peak RSS must stay ~flat."""
    result = _record(benchmark, "ooc", factor)
    assert result["samples"] == BASE_TRIALS * factor * 2 * 130 * 48
    assert result["peak_rss_mb"] < MEMORY_BUDGET_MB


@pytest.mark.benchmark(group="out-of-core")
@pytest.mark.parametrize("factor", (1, 100))
def test_in_memory_baseline(benchmark, factor):
    """The in-memory path at 1x (throughput baseline) and 100x (RSS contrast)."""
    result = _record(benchmark, "memory", factor)
    assert result["digest"] == _measure("ooc", factor)["digest"]


# ----------------------------------------------------------------------
# CI guards (also run standalone, without --benchmark-only)
# ----------------------------------------------------------------------
def test_out_of_core_memory_guard():
    """100x campaign through the shard store stays inside the RAM budget."""
    result = _measure("ooc", 100)
    assert result["peak_rss_mb"] < MEMORY_BUDGET_MB, (
        f"100x spilled campaign peaked at {result['peak_rss_mb']:.0f} MB "
        f"(budget {MEMORY_BUDGET_MB} MB)"
    )


def test_out_of_core_parallel_memory_guard():
    """Chunk-parallel spilling stays inside the RAM budget at 4 workers.

    With ``max_workers=4`` the campaign backend's process workers write
    their chunks straight into the shard store's on-disk group format, so
    per-process residency is one chunk tensor regardless of campaign size
    (10x scale here keeps the CI wall-clock bounded — worker residency does
    not grow with the trials axis).  The digest must equal the serial
    spilled run's: direct worker spilling is bit-identical.
    """
    parallel = _measure("ooc", 10, workers=4)
    assert parallel["peak_rss_mb"] < MEMORY_BUDGET_MB, (
        f"4-worker spilled campaign peaked at {parallel['peak_rss_mb']:.0f} MB "
        f"(budget {MEMORY_BUDGET_MB} MB)"
    )
    assert parallel["digest"] == _measure("ooc", 10)["digest"], (
        "4-worker spilled campaign is not bit-identical to the serial spill"
    )


def test_out_of_core_throughput_guard():
    """At 1x the spill path is bit-identical and within 2x of in-memory."""
    spilled = _measure("ooc", 1)
    in_memory = _measure("memory", 1)
    assert spilled["digest"] == in_memory["digest"], (
        "spilled campaign is not bit-identical to the in-memory run"
    )
    floor = in_memory["samples_per_second"] / THROUGHPUT_FACTOR
    assert spilled["samples_per_second"] >= floor, (
        f"spill path too slow: {spilled['samples_per_second']:,.0f} samples/s "
        f"vs in-memory {in_memory['samples_per_second']:,.0f} "
        f"(floor {floor:,.0f})"
    )
