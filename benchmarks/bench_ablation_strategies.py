"""Ablation A1 — early-bird delivery strategies (§5 discussion).

Compares bulk, fine-grained, binned and timeout delivery on arrival vectors
measured from each application's campaign, plus a buffer-size sweep.  The §5
claims under test:

* MiniQMC-like wide distributions benefit from both binned and fine-grained
  early-bird delivery;
* MiniFE-like rare-laggard profiles are served well by a timeout flush;
* when arrivals are nearly simultaneous (MiniMD steady state) early-bird
  delivery cannot beat the bulk send by much — the motivation for "a more
  sophisticated approach".
"""

import numpy as np
import pytest

from repro.core.aggregation import AggregationLevel, aggregate
from repro.core.laggard import IterationClass, analyze_laggards
from repro.core.strategies import (
    BinnedStrategy,
    BulkStrategy,
    FineGrainedStrategy,
    TimeoutStrategy,
    compare_strategies,
)

BUFFER_BYTES = 8 * 1024 * 1024


def _arrivals_of_class(dataset, iteration_class):
    grouped = aggregate(dataset, AggregationLevel.PROCESS_ITERATION)
    analysis = analyze_laggards(grouped)
    key = analysis.exemplar(iteration_class)
    if key is None:
        return None
    return grouped.group(key)


def test_strategies_on_miniqmc_wide_distribution(benchmark, miniqmc_ds):
    arrivals = _arrivals_of_class(miniqmc_ds, IterationClass.WIDE)
    assert arrivals is not None
    comparison = benchmark(
        compare_strategies, arrivals, buffer_bytes=BUFFER_BYTES
    )
    speedups = comparison.speedup_over_bulk()
    bulk_exposed = comparison.outcomes["bulk"].exposed_after_compute_s
    fine_exposed = comparison.outcomes["fine_grained"].exposed_after_compute_s
    binned_exposed = comparison.outcomes["binned(8)"].exposed_after_compute_s
    # the wide arrival spread lets early-bird delivery hide almost the whole
    # message behind the slowest movers' compute
    assert fine_exposed < 0.25 * bulk_exposed
    assert binned_exposed < bulk_exposed
    assert speedups["fine_grained"] > 1.0
    assert comparison.best().strategy != "bulk"


def test_strategies_on_minife_laggard_iteration(benchmark, minife_ds):
    arrivals = _arrivals_of_class(minife_ds, IterationClass.LAGGARD)
    assert arrivals is not None
    comparison = benchmark(
        compare_strategies,
        arrivals,
        buffer_bytes=BUFFER_BYTES,
        strategies=(
            BulkStrategy(),
            FineGrainedStrategy(),
            BinnedStrategy(8),
            TimeoutStrategy(0.5e-3),
        ),
    )
    speedups = comparison.speedup_over_bulk()
    # a timeout flush reclaims most of what fine-grained reclaims on this
    # profile (the §5 recommendation for MiniFE)
    assert speedups["timeout(0.5ms)"] > 1.0
    assert speedups["timeout(0.5ms)"] >= 0.9 * speedups["fine_grained"]


def test_strategies_on_minimd_tight_iteration(benchmark, minimd_ds):
    arrivals = _arrivals_of_class(minimd_ds, IterationClass.NO_LAGGARD)
    assert arrivals is not None
    comparison = benchmark(
        compare_strategies, arrivals, buffer_bytes=BUFFER_BYTES
    )
    speedups = comparison.speedup_over_bulk()
    # nearly simultaneous arrivals: early-bird gains are marginal (< 5 %)
    assert speedups["fine_grained"] < 1.05


@pytest.mark.parametrize("buffer_mb", [1, 8, 64])
def test_buffer_size_sweep_on_miniqmc(benchmark, miniqmc_ds, buffer_mb):
    """Crossover behaviour: the larger the message relative to the arrival
    spread, the smaller the relative early-bird gain."""
    arrivals = _arrivals_of_class(miniqmc_ds, IterationClass.WIDE)
    comparison = benchmark(
        compare_strategies, arrivals, buffer_bytes=buffer_mb * 1024 * 1024
    )
    assert comparison.speedup_over_bulk()["fine_grained"] >= 1.0 - 1e-9


def test_gain_shrinks_as_buffer_grows(miniqmc_ds):
    arrivals = _arrivals_of_class(miniqmc_ds, IterationClass.WIDE)
    gains = {}
    for buffer_mb in (1, 64):
        comparison = compare_strategies(
            arrivals, buffer_bytes=buffer_mb * 1024 * 1024
        )
        bulk = comparison.outcomes["bulk"]
        fine = comparison.outcomes["fine_grained"]
        gains[buffer_mb] = (bulk.completion_s - fine.completion_s) / bulk.completion_s
    assert gains[64] < gains[1] + 1e-9
