"""§4.1 (S2) — application-level and application-iteration-level normality.

Paper claims:

* At the application level (all samples pooled) every test rejects normality
  for every application.
* At the application-iteration level MiniFE and MiniMD reject for all 200
  iterations; MiniQMC has a handful (8/200) of iterations that pass
  D'Agostino only.

At benchmark scale (2 trials × 2 processes) the application-iteration groups
have 192 samples instead of 3840, so the assertion is the qualitative one:
coarse aggregation rejects far more often than the process-iteration level,
and MiniFE/MiniMD application-level pooling is always rejected.
"""

from repro.core.aggregation import AggregationLevel
from repro.core.normality import NormalityStudy


def _study_all_levels(dataset):
    study = NormalityStudy(dataset)
    study.level_result(AggregationLevel.APPLICATION)
    study.level_result(AggregationLevel.APPLICATION_ITERATION)
    study.level_result(AggregationLevel.PROCESS_ITERATION)
    return study


def test_section41_minife(benchmark, minife_ds):
    study = benchmark(_study_all_levels, minife_ds)
    assert study.application_rejects_normality()
    passes = study.application_iteration_pass_counts()
    assert max(passes.values()) <= 5  # essentially never normal when pooled


def test_section41_minimd(benchmark, minimd_ds):
    study = benchmark(_study_all_levels, minimd_ds)
    assert study.application_rejects_normality()
    # pooling across processes rejects more often than single process teams
    pooled = study.application_iteration_pass_counts()["dagostino"] / 200.0
    per_team = study.process_iteration_pass_rates()["dagostino"]
    assert pooled < per_team


def test_section41_miniqmc(benchmark, miniqmc_ds):
    study = benchmark(_study_all_levels, miniqmc_ds)
    rates = study.process_iteration_pass_rates()
    assert min(rates.values()) > 0.85
    # the coarse levels pool heterogeneous walker populations and therefore
    # pass (much) less often than the per-process-iteration level
    pooled = study.application_iteration_pass_counts()["shapiro_wilk"] / 200.0
    assert pooled < rates["shapiro_wilk"]
