"""Service load benchmark: N concurrent clients against the campaign service.

Two load shapes, both a duplicate+distinct mix (every distinct config is
submitted several times, concurrently):

* a constant-time counting backend, isolating the *service* overhead
  (scheduling, coalescing, shard broadcast) from campaign compute — and
  proving the coalescing claim exactly: duplicates never reach the backend;
* real smoke-scale campaigns on the vectorized backend, the end-to-end
  requests/s a deployment would see.

Each records requests/s and p50/p99 submit-to-result latency in
``extra_info`` (landing in ``bench.json`` for the CI benchmark job) and
asserts coalescing effectiveness before timing anything.
"""

import asyncio
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core.timing import TimingShard
from repro.experiments.backends import (
    CampaignBackend,
    ShardSpec,
    register_backend,
    unregister_backend,
)
from repro.experiments.config import CampaignConfig
from repro.service import CampaignService

BACKEND_NAME = "bench-service-counting"

#: the load mix: N_REQUESTS submissions over N_DISTINCT distinct configs
N_REQUESTS = 24
N_DISTINCT = 8
SHARDS_PER_JOB = 3  # 1 trial x 3 processes


class CountingBackend(CampaignBackend):
    """Constant-time backend counting shard executions (thread mode only)."""

    computed = 0

    def shard_specs(self, config):
        return [
            ShardSpec(trial=t, process=p)
            for t in range(config.trials)
            for p in range(config.processes)
        ]

    def run_shard(self, config, spec, streams):
        type(self).computed += 1
        n = config.iterations * config.threads
        iteration, thread = np.divmod(np.arange(n), config.threads)
        columns = {
            "trial": np.full(n, spec.trial),
            "process": np.full(n, spec.process),
            "iteration": iteration,
            "thread": thread,
            "compute_time_s": np.full(n, 1.0e-3),
        }
        return TimingShard(trial=spec.trial, process=spec.process, columns=columns)


@pytest.fixture(scope="module")
def counting_backend():
    CountingBackend.computed = 0
    register_backend(BACKEND_NAME)(CountingBackend)
    try:
        yield CountingBackend
    finally:
        unregister_backend(BACKEND_NAME)


def _synthetic_config(i: int) -> CampaignConfig:
    config = CampaignConfig.smoke(application="minife")
    config = config.scaled(trials=1, processes=SHARDS_PER_JOB)
    return replace(config, seed=1000 + i, backend=BACKEND_NAME)


def _real_config(i: int) -> CampaignConfig:
    return replace(CampaignConfig.smoke(application="minife"), seed=2000 + i)


def _run_load(n_requests: int, n_distinct: int, make_config, *, workers: int = 4):
    """Submit the whole mix up front, then await every result.

    ``CampaignService.submit`` never suspends, so the submission loop is
    atomic with respect to the event loop: all duplicates are admitted
    while their original is still in flight, making the coalescing counts
    deterministic (``n_requests - n_distinct`` hits, exactly).
    """

    async def load():
        async with CampaignService(
            workers=workers, max_queue=n_requests, executor_mode="thread"
        ) as service:
            started = time.perf_counter()
            handles = [
                await service.submit(make_config(i % n_distinct))
                for i in range(n_requests)
            ]
            latencies = []

            async def finish(handle):
                await handle.result()
                latencies.append(time.perf_counter() - started)

            await asyncio.gather(*(finish(h) for h in handles))
            wall = time.perf_counter() - started
            stats = service.stats()
        assert stats["coalesce_hits"] == n_requests - n_distinct
        assert stats["coalesce_misses"] == n_distinct
        # duplicates share their original's job (and therefore its digest)
        for i in range(n_requests):
            assert handles[i].digest == handles[i % n_distinct].digest
        return {
            "requests_per_second": n_requests / wall,
            "latency_p50_ms": float(np.percentile(latencies, 50) * 1e3),
            "latency_p99_ms": float(np.percentile(latencies, 99) * 1e3),
            "coalesce_hits": stats["coalesce_hits"],
        }

    return asyncio.run(load())


def test_service_load_synthetic_backend(benchmark, counting_backend):
    """Service overhead only: duplicates must never reach the backend."""

    def run():
        counting_backend.computed = 0
        metrics = _run_load(N_REQUESTS, N_DISTINCT, _synthetic_config)
        # the coalescing-effectiveness claim, measured at the backend:
        # 24 requests, 8 distinct configs -> exactly 8 executions
        assert counting_backend.computed == N_DISTINCT * SHARDS_PER_JOB
        return metrics

    metrics = benchmark(run)
    benchmark.extra_info.update(metrics)
    assert metrics["requests_per_second"] > 0
    assert metrics["latency_p50_ms"] <= metrics["latency_p99_ms"]


def test_service_load_real_campaigns(benchmark):
    """End-to-end requests/s for real smoke-scale campaigns."""
    metrics = benchmark(_run_load, 12, 4, _real_config)
    benchmark.extra_info.update(metrics)
    assert metrics["coalesce_hits"] == 8
