"""Figure 7 — MiniMD distribution classes: initial / no-laggard / laggard.

Paper shape: the initial (first 19 iterations) histograms are wide with a
range just over 2 ms (Fig. 7a); afterwards 95.2 % of process-iterations show
no laggard (Fig. 7b) and 4.8 % contain a rare, high-magnitude laggard
(Fig. 7c).
"""

import pytest

from repro.experiments.figures import figure7_minimd_classes
from repro.experiments.paper import SECTION4_METRICS


def test_figure7_minimd_classes(benchmark, minimd_ds):
    figure = benchmark(figure7_minimd_classes, minimd_ds)
    steady_laggard = figure["steady_laggard_fraction"]
    # rare but present: an order of magnitude rarer than MiniFE's 22 %
    assert 0.0 < steady_laggard < 0.15
    assert steady_laggard < SECTION4_METRICS["minife"]["laggard_fraction"]

    initial = figure["initial_histogram"]
    no_laggard = figure["no_laggard_histogram"]
    assert initial is not None and no_laggard is not None
    # warm-up spread ≈ 2 ms; steady-state spread well under 1 ms
    assert 1.0e-3 < initial.spread() < 4.0e-3
    assert no_laggard.spread() < 1.0e-3
    if figure["laggard_histogram"] is not None:
        assert figure["laggard_histogram"].spread() > 1.0e-3
