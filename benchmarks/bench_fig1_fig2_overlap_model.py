"""Figures 1 & 2 — the early-bird communication model and the potential overlap.

Figure 1 illustrates partitions flowing to the receiver as their producing
threads finish; Figure 2 shows the per-thread idle windows ("green boxes")
that early-bird delivery could fill.  These benchmarks quantify both on
arrival vectors measured from the benchmark-scale campaigns and assert the
model's invariants:

* early-bird completion never exceeds bulk completion,
* the summed overlap windows equal the reclaimable time, and
* the gain grows with the arrival spread (MiniQMC > MiniFE).
"""

import numpy as np
import pytest

from repro.core.aggregation import AggregationLevel, aggregate
from repro.core.earlybird import EarlyBirdModel
from repro.core.reclaimable import reclaimable_time
from repro.experiments.figures import figure1_earlybird_timeline, figure2_potential_overlap


def _representative_arrivals(dataset):
    """The process-iteration whose reclaimable time is the median one."""
    grouped = aggregate(dataset, AggregationLevel.PROCESS_ITERATION)
    reclaim = reclaimable_time(grouped.values)
    index = int(np.argsort(reclaim)[len(reclaim) // 2])
    return grouped.values[index]


@pytest.mark.parametrize("application", ["minife", "minimd", "miniqmc"])
def test_figure1_earlybird_timeline(benchmark, bench_datasets, application):
    arrivals = _representative_arrivals(bench_datasets[application])
    figure = benchmark(
        figure1_earlybird_timeline, arrivals, buffer_bytes=8 * 1024 * 1024
    )
    assert figure["earlybird_completion_s"] <= figure["bulk_completion_s"] + 1e-12
    assert figure["speedup"] >= 1.0 - 1e-9
    assert len(figure["partition_delivery_s"]) == len(arrivals)


@pytest.mark.parametrize("application", ["minife", "minimd", "miniqmc"])
def test_figure2_potential_overlap(benchmark, bench_datasets, application):
    arrivals = _representative_arrivals(bench_datasets[application])
    figure = benchmark(figure2_potential_overlap, arrivals)
    assert figure["total_overlap_s"] == pytest.approx(
        reclaimable_time(arrivals)[0], rel=1e-9
    )
    assert np.all(figure["window_s"] >= 0.0)


def test_overlap_gain_ordering_across_applications(bench_datasets):
    """The wider the measured arrival distribution, the more communication the
    early-bird model hides: MiniQMC ≫ MiniFE/MiniMD."""
    model = EarlyBirdModel(buffer_bytes=8 * 1024 * 1024)
    gains = {}
    for name, dataset in bench_datasets.items():
        arrivals = _representative_arrivals(dataset)
        gains[name] = model.evaluate(arrivals).improvement_s
    assert gains["miniqmc"] > gains["minife"]
    assert gains["miniqmc"] > gains["minimd"]
