"""Scenario-subsystem throughput: noise sources and scenario campaigns.

Two groups:

* ``noise-sources`` — the vectorised ``batch_extra`` path of every
  registered noise source over a paper-scale batch (768 000 windows).  This
  is the per-sample cost a scenario pays for richer noise; the seed pair
  (periodic daemon + Poisson) is the baseline the new populations are
  compared against.
* ``scenario-campaign`` — a benchmark-scale MiniFE campaign through the
  scenario layer for the seed platform and the hostile cloud VM, asserting
  first that the scenario path is bit-identical to the plain config path for
  the default scenario.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import CampaignConfig
from repro.experiments.session import CampaignSession
from repro.scenarios import available_noise_sources, get_scenario, make_noise_source

PAPER_SAMPLES = 768_000


@pytest.mark.benchmark(group="noise-sources")
@pytest.mark.parametrize("kind", sorted(set(available_noise_sources()) - {"silent"}))
def test_noise_source_batch_throughput(benchmark, kind):
    source = make_noise_source(kind)
    work = np.full(PAPER_SAMPLES, 0.025)

    def run():
        return source.batch_extra(work, np.random.default_rng(11))

    extra = benchmark(run)
    assert extra.shape == work.shape
    assert np.all(extra >= 0.0) and np.all(np.isfinite(extra))


def _scenario_dataset(name: str):
    config = get_scenario(name).campaign_config("benchmark")
    return CampaignSession(config).run().dataset


@pytest.mark.benchmark(group="scenario-campaign")
def test_scenario_campaign_manzano_default(benchmark):
    plain = CampaignSession(CampaignConfig.benchmark_scale("minife")).run().dataset
    dataset = benchmark(_scenario_dataset, "manzano-default")
    np.testing.assert_array_equal(dataset.compute_times_s, plain.compute_times_s)


@pytest.mark.benchmark(group="scenario-campaign")
def test_scenario_campaign_cloudvm(benchmark):
    dataset = benchmark(_scenario_dataset, "cloudvm-default")
    assert dataset.metadata["machine"] == "cloudvm"
    assert np.all(np.isfinite(dataset.compute_times_s))
