"""Figure 4 — MiniFE mat-vec arrival percentiles per application iteration.

Paper shape: mean median ≈ 26.30 ms; the inter-quartile range is tiny
(mean ≈ 0.18 ms) while the 5th/25th percentiles sit further below the median
than the 75th/95th sit above it (early arrivals are more common than late
ones, attributed to the work-distribution imbalance of 200 planes over 48
threads).
"""

import pytest

from repro.experiments.figures import figure4_minife_percentiles
from repro.experiments.paper import SECTION4_METRICS


def test_figure4_minife_percentiles(benchmark, minife_ds):
    figure = benchmark(figure4_minife_percentiles, minife_ds)
    paper = SECTION4_METRICS["minife"]
    assert figure["mean_median_ms"] == pytest.approx(
        paper["mean_median_arrival_ms"], rel=0.05
    )
    assert figure["mean_iqr_ms"] < 0.5
    assert figure["skew_direction"] == "early"
    series = figure["series"]
    # the trajectory is flat: no drift of the median across 200 iterations
    assert series.median.max() - series.median.min() < 2.0
