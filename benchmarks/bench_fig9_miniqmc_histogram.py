"""Figure 9 — a representative MiniQMC process-iteration histogram (1 ms bins).

Paper shape: the breadth of over 40 ms seen in the aggregated percentile plot
is already present within a single process-iteration — the spread is not an
artefact of pooling the 80 process-trial pairs.
"""

import pytest

from repro.experiments.figures import figure9_miniqmc_histogram
from repro.core.analyzer import ThreadTimingAnalyzer


def test_figure9_miniqmc_histogram(benchmark, miniqmc_ds):
    figure = benchmark(figure9_miniqmc_histogram, miniqmc_ds)
    histogram = figure["histogram"]
    assert histogram.bin_width == pytest.approx(1.0e-3)
    assert histogram.total == miniqmc_ds.n_threads
    # a single team's movers already span tens of milliseconds
    assert figure["spread_ms"] > 20.0


def test_single_iteration_spread_accounts_for_aggregate(miniqmc_ds):
    """The §4.2.3 question: is the wide Figure-8 band caused by per-iteration
    spread or by aggregation across processes/trials?  Per-iteration."""
    analyzer = ThreadTimingAnalyzer(miniqmc_ds)
    per_group_iqr = analyzer.laggards().iqr_s
    aggregate_iqr = analyzer.percentile_series().iqr.mean() * 1e-3
    assert per_group_iqr.mean() > 0.6 * aggregate_iqr
