"""Figure 8 — MiniQMC mover percentiles per iteration.

Paper shape: the most uniform behaviour across iterations of the three
applications, with the largest within-iteration spread: mean IQR ≈ 9.05 ms,
maximum IQR ≈ 15.61 ms, mean median ≈ 60.91 ms.
"""

import pytest

from repro.experiments.figures import figure8_miniqmc_percentiles
from repro.experiments.paper import SECTION4_METRICS


def test_figure8_miniqmc_percentiles(benchmark, miniqmc_ds):
    figure = benchmark(figure8_miniqmc_percentiles, miniqmc_ds)
    paper = SECTION4_METRICS["miniqmc"]
    assert figure["mean_median_ms"] == pytest.approx(
        paper["mean_median_arrival_ms"], rel=0.05
    )
    assert figure["mean_iqr_ms"] == pytest.approx(paper["mean_iqr_ms"], rel=0.35)
    assert figure["max_iqr_ms"] > figure["mean_iqr_ms"]
    series = figure["series"]
    # little variation across iterations: the median trajectory drifts far
    # less than the within-iteration spread
    assert (series.median.max() - series.median.min()) < figure["mean_iqr_ms"]
