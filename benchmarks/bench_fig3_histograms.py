"""Figure 3 — application-level thread-arrival histograms (10 µs bins).

Paper shape: each application's histogram has a dominant peak at its mean
median arrival time (≈ 26.3 ms for MiniFE, ≈ 24.7 ms for MiniMD, ≈ 60.9 ms
for MiniQMC); MiniQMC's histogram is far broader than the other two.
"""

import pytest

from repro.experiments.figures import figure3_histogram
from repro.experiments.paper import SECTION4_METRICS


@pytest.mark.parametrize("application", ["minife", "minimd", "miniqmc"])
def test_figure3_histogram(benchmark, bench_datasets, application):
    dataset = bench_datasets[application]
    figure = benchmark(figure3_histogram, dataset)
    histogram = figure["histogram"]
    assert histogram.bin_width == pytest.approx(10.0e-6)
    assert histogram.total == dataset.n_samples
    expected_peak_ms = SECTION4_METRICS[application]["mean_median_arrival_ms"]
    assert figure["peak_ms"] == pytest.approx(expected_peak_ms, rel=0.15)


def test_figure3_miniqmc_is_broadest(bench_datasets):
    spreads = {
        name: figure3_histogram(ds)["histogram"].spread()
        for name, ds in bench_datasets.items()
    }
    assert spreads["miniqmc"] > 3 * spreads["minife"]
    assert spreads["miniqmc"] > 3 * spreads["minimd"]
