"""Figure 5 — MiniFE process-iteration distribution classes (50 µs bins).

Paper shape: 77.6 % of process-iterations contain no laggard thread (Fig. 5a)
and 22.4 % contain one (Fig. 5b), using the 1 ms-over-median threshold; both
classes share a very tight main mode near 26.3 ms.
"""

import pytest

from repro.experiments.figures import figure5_minife_classes
from repro.experiments.paper import SECTION4_METRICS


def test_figure5_minife_classes(benchmark, minife_ds):
    figure = benchmark(figure5_minife_classes, minife_ds)
    paper_fraction = SECTION4_METRICS["minife"]["laggard_fraction"]
    measured = figure["laggard_fraction"]
    # generous band around the paper's 22.4 %: the claim is "roughly a fifth
    # of iterations", not an exact percentage
    assert 0.5 * paper_fraction <= measured <= 2.0 * paper_fraction
    assert figure["no_laggard_fraction"] == pytest.approx(1.0 - measured)

    no_laggard = figure["no_laggard_histogram"]
    laggard = figure["laggard_histogram"]
    assert no_laggard is not None and laggard is not None
    assert no_laggard.bin_width == pytest.approx(50.0e-6)
    # the laggard exemplar's occupied range extends beyond the threshold,
    # the clean exemplar's does not
    assert laggard.spread() > 1.0e-3
    assert no_laggard.spread() < laggard.spread()
