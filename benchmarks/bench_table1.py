"""Table 1 — process-iteration normality pass rates per application and test.

Paper values (percent passing at 5 % significance):

====================  =======  =======  ========
Test                  MiniFE   MiniMD   MiniQMC
====================  =======  =======  ========
D'Agostino            3        77       95
Shapiro–Wilk          < 1      74       96
Anderson–Darling      < 1      76       96
====================  =======  =======  ========

The benchmark times the full Table-1 regeneration (battery of three tests on
every process-iteration group of every application) and asserts the paper's
qualitative classes: MiniFE almost never normal, MiniMD mostly normal,
MiniQMC ~95 % normal, with the same per-test ordering of applications.
"""

import numpy as np

from repro.experiments.paper import TABLE1_PASS_PERCENT
from repro.experiments.tables import table1
from repro.stats.battery import TEST_LABELS, TEST_NAMES


def _assert_table1_shape(rows):
    by_app = {row["application"]: row for row in rows}
    for test in TEST_NAMES:
        label = f"{TEST_LABELS[test]} (measured %)"
        minife = by_app["MiniFE"][label]
        minimd = by_app["MiniMD"][label]
        miniqmc = by_app["MiniQMC"][label]
        assert minife < 10.0, f"MiniFE should almost never pass {test}"
        assert minimd > 50.0, f"MiniMD should mostly pass {test}"
        assert miniqmc > 85.0, f"MiniQMC should pass ~95% of {test}"
        measured_order = np.argsort([minife, minimd, miniqmc]).tolist()
        paper_order = np.argsort(
            [TABLE1_PASS_PERCENT[a][test] for a in ("minife", "minimd", "miniqmc")]
        ).tolist()
        assert measured_order == paper_order


def test_table1_regeneration(benchmark, bench_datasets):
    rows = benchmark(table1, bench_datasets)
    _assert_table1_shape(rows)
