"""Extension — projected whole-application impact of early-bird delivery.

Goes one step beyond the paper's measurements (its stated future work): given
the measured arrival distributions and the Omni-Path-like network model, what
end-to-end iteration-time improvement would a restructured application see
from each delivery strategy?

Shape assertions:

* no strategy ever projects slower than the bulk baseline (the projection only
  moves communication off the critical path), and
* the projected gain ordering follows the measured arrival spreads
  (MiniQMC ≥ MiniFE ≥ MiniMD for a fixed message size), while all gains shrink
  as the message shrinks relative to the spread.
"""

import pytest

from repro.core.endtoend import EndToEndModel


def test_endtoend_projection_all_applications(benchmark, bench_datasets):
    model = EndToEndModel(buffer_bytes=8 * 1024 * 1024)
    projections = benchmark(
        model.project_applications, bench_datasets, max_iterations=60
    )
    speedups = {
        name: projection.speedup_over_bulk() for name, projection in projections.items()
    }
    for name, per_strategy in speedups.items():
        for strategy, value in per_strategy.items():
            assert value >= 1.0 - 1e-9, (name, strategy)
    # every application hides most of its exposed communication
    for name, projection in projections.items():
        reduction = projection.communication_reduction()["fine_grained"]
        assert reduction > 0.5, name


@pytest.mark.parametrize("buffer_mb", [1, 32])
def test_endtoend_gain_scales_with_message_size(benchmark, miniqmc_ds, buffer_mb):
    model = EndToEndModel(buffer_bytes=buffer_mb * 1024 * 1024)
    projection = benchmark(model.project_dataset, miniqmc_ds, max_iterations=40)
    speedup = projection.speedup_over_bulk()["fine_grained"]
    assert speedup >= 1.0 - 1e-9
    # absolute projected saving grows with the message size
    bulk = projection.projections["bulk"]
    fine = projection.projections["fine_grained"]
    saving = bulk.mean_iteration_s - fine.mean_iteration_s
    if buffer_mb == 32:
        assert saving > 1.0e-3  # tens of ms of compute hide a 2.6 ms message
