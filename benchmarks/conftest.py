"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures from a
*benchmark-scale* campaign: the full 48-thread teams and 200 application
iterations (the dimensions the figures depend on) but 2 trials × 2 processes
instead of 10 × 8, so the whole suite runs in minutes.  The campaign datasets
are built once per session; the benchmarked functions are the analysis /
generation steps.

Every benchmark also *asserts the qualitative claim* the corresponding paper
artefact makes before timing it, so ``pytest benchmarks/ --benchmark-only``
doubles as the reproduction check.  Paper-scale numbers for EXPERIMENTS.md
come from ``examples/paper_reproduction.py --scale paper``.
"""

from __future__ import annotations

import pytest

from repro.core.analyzer import ThreadTimingAnalyzer
from repro.experiments.config import CampaignConfig
from repro.experiments.session import CampaignSession

APPLICATIONS = ("minife", "minimd", "miniqmc")


@pytest.fixture(scope="session")
def bench_config() -> CampaignConfig:
    return CampaignConfig.benchmark_scale()


@pytest.fixture(scope="session")
def bench_datasets(bench_config):
    """Benchmark-scale datasets for all three applications."""
    session = CampaignSession(bench_config)
    return {
        name: result.dataset
        for name, result in session.run_all(APPLICATIONS).items()
    }


@pytest.fixture(scope="session")
def bench_analyzers(bench_datasets):
    """One analyzer per application (shared caches across benchmarks)."""
    return {name: ThreadTimingAnalyzer(ds) for name, ds in bench_datasets.items()}


@pytest.fixture(scope="session")
def minife_ds(bench_datasets):
    return bench_datasets["minife"]


@pytest.fixture(scope="session")
def minimd_ds(bench_datasets):
    return bench_datasets["minimd"]


@pytest.fixture(scope="session")
def miniqmc_ds(bench_datasets):
    return bench_datasets["miniqmc"]
