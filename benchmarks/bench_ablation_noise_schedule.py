"""Ablation A2 — OS noise on/off and loop-schedule choice.

Design-choice checks called out in DESIGN.md:

* with the OS-noise model disabled, MiniFE's laggard iterations drop to
  (almost) none beyond the application-level stragglers, and MiniMD's
  post-warm-up laggards disappear entirely — evidence that the noise model is
  what reproduces the paper's laggard statistics;
* switching MiniFE's mat-vec loop from ``static`` to ``dynamic`` scheduling
  removes the deterministic boundary-thread imbalance (the early arrivals),
  pushing its process-iteration distributions towards normality — the
  counterfactual behind the §4.2.1 "work distribution imbalance" explanation.
"""

import numpy as np
import pytest

from repro.apps.minife.app import MiniFEApp, MiniFEConfig
from repro.core.analyzer import ThreadTimingAnalyzer
from repro.experiments.campaign import run_campaign
from repro.experiments.config import CampaignConfig
from repro.openmp.schedule import DynamicSchedule


def _ablation_config(application, *, noise):
    config = CampaignConfig(
        application=application,
        trials=1,
        processes=2,
        iterations=100,
        threads=48,
        seed=20230421,
    )
    if not noise:
        config.machine = config.machine.without_noise()
    return config


def test_noise_off_removes_minimd_laggards(benchmark):
    dataset = benchmark(run_campaign, _ablation_config("minimd", noise=False))
    analyzer = ThreadTimingAnalyzer(dataset)
    laggards = analyzer.laggards()
    steady = [
        bool(has)
        for key, has in zip(laggards.keys, laggards.has_laggard)
        if key[-1] >= 19
    ]
    assert np.mean(steady) == pytest.approx(0.0, abs=0.02)


def test_noise_on_restores_minimd_laggards(benchmark):
    dataset = benchmark(run_campaign, _ablation_config("minimd", noise=True))
    analyzer = ThreadTimingAnalyzer(dataset)
    laggards = analyzer.laggards()
    steady = [
        bool(has)
        for key, has in zip(laggards.keys, laggards.has_laggard)
        if key[-1] >= 19
    ]
    assert 0.005 < np.mean(steady) < 0.15


def test_noise_off_minife_laggards_come_from_the_application(benchmark):
    dataset = benchmark(run_campaign, _ablation_config("minife", noise=False))
    fraction = ThreadTimingAnalyzer(dataset).laggards().laggard_fraction
    # only the application-level straggler model remains (~18 %)
    assert 0.08 < fraction < 0.30


def test_dynamic_schedule_rebalances_minife(benchmark):
    """Dynamic scheduling removes the boundary-thread early arrivals."""

    def build_dataset():
        config = _ablation_config("minife", noise=False)
        dataset_static = run_campaign(config)
        return dataset_static

    static_ds = benchmark(build_dataset)
    static_report = ThreadTimingAnalyzer(static_ds).report(include_earlybird=False)
    # without execution jitter the only spread left in the static campaign is
    # the deterministic work imbalance plus the application stragglers
    assert static_report.mean_iqr_ms < 0.2

    app = MiniFEApp(MiniFEConfig(straggler_probability=0.0, schedule=DynamicSchedule(chunk=64)))
    rng = np.random.default_rng(0)
    static_base = MiniFEApp(
        MiniFEConfig(straggler_probability=0.0)
    ).base_thread_times(0, 0, rng)
    dynamic_base = app.base_thread_times(0, 0, rng)
    # dynamic scheduling narrows the spread of pure work per thread and in
    # particular removes the early boundary threads of the static blocks
    assert dynamic_base.std() < static_base.std()
    assert static_base.min() < dynamic_base.min()
