"""Figure 6 — MiniMD force-loop percentiles per iteration (two-phase).

Paper shape: the first nineteen iterations show a much wider spread (mean IQR
≈ 0.93 ms, median 25–26 ms) than the remainder of the run (mean IQR
≈ 0.15 ms, median ≈ 24.74 ms), which instead shows sporadic laggards.
"""

import pytest

from repro.experiments.figures import figure6_minimd_percentiles
from repro.experiments.paper import SECTION4_METRICS


def test_figure6_minimd_percentiles(benchmark, minimd_ds):
    figure = benchmark(figure6_minimd_percentiles, minimd_ds)
    paper = SECTION4_METRICS["minimd"]
    assert figure["warmup_mean_iqr_ms"] > 3 * figure["steady_mean_iqr_ms"]
    assert figure["warmup_mean_iqr_ms"] == pytest.approx(
        paper["warmup_mean_iqr_ms"], rel=0.5
    )
    series = figure["series"]
    steady_median = series.median[figure["warmup_iterations"]:].mean()
    warmup_median = series.median[: figure["warmup_iterations"]].mean()
    assert steady_median == pytest.approx(paper["mean_median_arrival_ms"], rel=0.05)
    assert 25.0 <= warmup_median <= 26.5
