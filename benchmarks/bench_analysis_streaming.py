"""Merged-dataset vs streaming-pass campaign analysis.

Benchmarks the two ways of producing a feasibility report for the same
benchmark-scale MiniFE campaign:

* **merged** — run the campaign, merge the shards into the dense
  ``TimingDataset``, analyse with the in-memory ``ThreadTimingAnalyzer``;
* **streaming** — fold the shard stream through the registered analysis
  passes (``CampaignSession.analyze(analyses=...)``), never materialising
  the merged dataset.

Qualitative claims asserted before timing:

* both paths produce field-for-field identical reports in exact mode (the
  refactor's acceptance criterion), and
* in bounded (sketch) mode the merged accumulator state stays essentially
  the same size when the campaign grows 3x in shard count — peak
  accumulator memory is independent of the number of shards, while the
  dataset the merged path must hold grows linearly.

The columnar sweep (``analysis-columnar`` group) additionally times the
per-shard streaming fold against the columnar group-level fast path on a
paper-scale campaign, per pass set, tagging each ``bench.json`` entry with
``analysis_path``/``analysis_passes``/``samples_per_second`` for the CI
benchmark table; ``test_columnar_analysis_speedup_guard`` is the ≥3x
regression guard on the pure group-fold pass set.
"""

from __future__ import annotations

import pickle
import time

import numpy as np
import pytest

from repro.analysis import (
    AnalysisContext,
    EarlybirdPass,
    HistogramPass,
    LaggardsPass,
    NormalityPass,
    PercentilesPass,
    ReclaimablePass,
    ShardAnalyzer,
    resolve_analyses,
    run_analyses,
    run_columnar_analyses,
)
from repro.core.aggregation import ShardSlice
from repro.core.analyzer import ThreadTimingAnalyzer
from repro.experiments.backends import get_backend
from repro.experiments.config import CampaignConfig
from repro.experiments.session import CampaignSession

#: the report-producing passes (earlybird excluded to keep both sides equal)
ANALYSES = ("percentiles", "histogram", "laggards", "reclaimable", "normality")

#: guard threshold: the columnar fast path must stay at least this much
#: faster than the per-shard streaming fold on the group-fold pass set
MIN_COLUMNAR_ANALYSIS_SPEEDUP = 3.0

#: the pass sets of the per-shard vs columnar sweep.  ``group-fold`` is the
#: subset whose per-shard cost is pure per-group Python dispatch — the cost
#: the columnar kernel eliminates; ``report`` is the full report set, whose
#: percentile/laggard/normality passes are dominated by order statistics
#: (``np.partition``, the batch normality battery) that both paths compute
#: identically.  ``NormalityPass(application_iteration=False)`` on both
#: sides: the iteration-count finalize is a fixed shared cost that would
#: otherwise blur the fold comparison.
SWEEP_PASSES = {
    "group-fold": lambda: [EarlybirdPass(), ReclaimablePass(), HistogramPass()],
    "report": lambda: [
        PercentilesPass(),
        HistogramPass(),
        LaggardsPass(),
        ReclaimablePass(),
        NormalityPass(application_iteration=False),
    ],
}


def _paper_scale_inputs():
    """Materialized shards, the equivalent column block, and the context of
    a paper-scale MiniFE campaign (10 trials x 8 processes x 200 x 48)."""
    config = CampaignConfig(
        application="minife", trials=10, processes=8, iterations=200,
        threads=48, seed=1, backend="campaign",
    )
    backend = get_backend(config.backend)
    shards = list(backend.iter_shards(config))
    columns = {
        name: np.concatenate([np.asarray(shard.columns[name]) for shard in shards])
        for name in shards[0].columns
    }
    slices = []
    start = 0
    for shard in shards:
        slices.append(
            ShardSlice(shard.trial, shard.process, start, start + shard.n_samples)
        )
        start += shard.n_samples
    context = AnalysisContext.from_config(
        config, exact=True, metadata=backend.metadata(config)
    )
    return shards, (columns, slices), context


@pytest.fixture(scope="module")
def paper_inputs():
    return _paper_scale_inputs()


def _fold(path: str, inputs, passes) -> None:
    shards, block, context = inputs
    if path == "per-shard":
        run_analyses(iter(shards), passes, context)
    else:
        run_columnar_analyses(iter([block]), passes, context)


def _config(trials: int = 2) -> CampaignConfig:
    return CampaignConfig.benchmark_scale(application="minife").scaled(trials=trials)


def _merged_report(config: CampaignConfig):
    dataset = CampaignSession(config).run(use_cache=False).dataset
    return ThreadTimingAnalyzer(dataset).report(include_earlybird=False)


def _streaming_report(config: CampaignConfig, exact: bool = True):
    results = CampaignSession(config).analyze(analyses=ANALYSES, exact=exact)
    return results.report(include_earlybird=False)


def _merged_accumulator_bytes(config: CampaignConfig) -> int:
    """Pickled size of the fully merged (pre-finalize) pass states in
    bounded mode — the streaming path's peak retained analysis state.

    Sketch capacities are set low enough that every sketch is saturated at
    the small campaign already: beyond saturation the retained state is a
    function of the sketch capacity, not of how many shards streamed
    through it.
    """
    from repro.analysis import (
        HistogramPass,
        LaggardsPass,
        NormalityPass,
        PercentilesPass,
        ReclaimablePass,
    )

    backend = get_backend(config.backend)
    context = AnalysisContext.from_config(
        config, exact=False, metadata=backend.metadata(config)
    )
    passes = resolve_analyses(
        [
            PercentilesPass(sketch_capacity=128),
            HistogramPass(),
            LaggardsPass(),
            ReclaimablePass(sketch_capacity=128),
            NormalityPass(sketch_capacity=1024),
        ]
    )
    mapper = ShardAnalyzer(passes, context)
    merged = None
    for shard in backend.iter_shards(config):
        partial = mapper(shard)
        if merged is None:
            merged = partial
        else:
            merged = {
                p.name: p.merge(merged[p.name], partial[p.name]) for p in passes
            }
    return len(pickle.dumps(merged))


@pytest.mark.benchmark(group="analysis-streaming")
def test_merged_dataset_analysis(benchmark):
    config = _config()
    report = benchmark(_merged_report, config)
    assert report.n_samples == config.samples_per_application


@pytest.mark.benchmark(group="analysis-streaming")
def test_streaming_pass_analysis(benchmark):
    config = _config()
    # acceptance: the streaming path is field-for-field identical to the
    # merged-dataset path before we time it
    assert _streaming_report(config).as_dict() == _merged_report(config).as_dict()
    report = benchmark(_streaming_report, config)
    assert report.n_samples == config.samples_per_application


@pytest.mark.benchmark(group="analysis-streaming-memory")
def test_accumulator_memory_independent_of_shard_count(benchmark):
    small, large = _config(trials=2), _config(trials=6)
    small_bytes = _merged_accumulator_bytes(small)
    large_bytes = benchmark(_merged_accumulator_bytes, large)
    dataset_growth = (
        large.samples_per_application / small.samples_per_application
    )
    assert dataset_growth == pytest.approx(3.0)
    # bounded accumulators: 3x the shards, ~1x the retained state (sketches
    # saturate at their capacity; only integer tallies grow)
    assert large_bytes < 1.2 * small_bytes
    # and the retained state is a small fraction of the merged dataset the
    # in-memory path must hold (5 int/float columns x 8 bytes per sample)
    merged_dataset_bytes = large.samples_per_application * 8 * 5
    assert large_bytes < 0.1 * merged_dataset_bytes


@pytest.mark.benchmark(group="analysis-columnar")
@pytest.mark.parametrize("passes", sorted(SWEEP_PASSES))
@pytest.mark.parametrize("path", ["per-shard", "columnar"])
def test_analysis_fold_throughput(benchmark, paper_inputs, path, passes):
    """Per-shard vs columnar analysis samples/sec on a paper-scale campaign.

    The analysis fold alone (shards and the column block are materialized
    once per module), so the entry isolates the consumer the columnar
    kernel replaced; ``analysis_path``/``analysis_passes`` in
    ``extra_info`` feed the CI benchmark job's per-path table.
    """
    shards, _, _ = paper_inputs
    n_samples = sum(shard.n_samples for shard in shards)
    benchmark(_fold, path, paper_inputs, SWEEP_PASSES[passes]())
    benchmark.extra_info["analysis_path"] = path
    benchmark.extra_info["analysis_passes"] = passes
    benchmark.extra_info["samples_per_second"] = (
        n_samples / benchmark.stats.stats.min
    )


def test_columnar_analysis_speedup_guard():
    """Regression guard for the columnar group-fold kernel: on a
    paper-scale MiniFE campaign the columnar path must stay >= 3x the
    per-shard streaming fold on the ``group-fold`` pass set
    (earlybird + reclaimable + histogram).  That set is the guard's recipe
    because its per-shard cost is exactly what the kernel eliminates — one
    Python dispatch and group-by per shard per pass — so a fold regression
    shows up undiluted (measured headroom ~4-5x).  The order-statistic
    passes (percentiles / laggards / normality) spend most of their time in
    ``np.partition`` and the batch normality battery, identical work on
    both paths, so including them could mask a real fold regression behind
    shared statistics cost (their per-path numbers are still recorded by
    ``test_analysis_fold_throughput``'s ``report`` sweep)."""
    inputs = _paper_scale_inputs()

    def best(path: str, repeats: int = 3) -> float:
        _fold(path, inputs, SWEEP_PASSES["group-fold"]())  # warm-up
        elapsed = np.inf
        for _ in range(repeats):
            start = time.perf_counter()
            _fold(path, inputs, SWEEP_PASSES["group-fold"]())
            elapsed = min(elapsed, time.perf_counter() - start)
        return elapsed

    per_shard, columnar = best("per-shard"), best("columnar")
    speedup = per_shard / columnar
    assert speedup >= MIN_COLUMNAR_ANALYSIS_SPEEDUP, (
        f"columnar analysis fold is only {speedup:.1f}x the per-shard "
        f"streaming path ({per_shard:.3f}s vs {columnar:.3f}s on the "
        f"group-fold pass set); the group-level kernel has regressed below "
        f"the {MIN_COLUMNAR_ANALYSIS_SPEEDUP}x guard"
    )
