"""Merged-dataset vs streaming-pass campaign analysis.

Benchmarks the two ways of producing a feasibility report for the same
benchmark-scale MiniFE campaign:

* **merged** — run the campaign, merge the shards into the dense
  ``TimingDataset``, analyse with the in-memory ``ThreadTimingAnalyzer``;
* **streaming** — fold the shard stream through the registered analysis
  passes (``CampaignSession.analyze(analyses=...)``), never materialising
  the merged dataset.

Qualitative claims asserted before timing:

* both paths produce field-for-field identical reports in exact mode (the
  refactor's acceptance criterion), and
* in bounded (sketch) mode the merged accumulator state stays essentially
  the same size when the campaign grows 3x in shard count — peak
  accumulator memory is independent of the number of shards, while the
  dataset the merged path must hold grows linearly.
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis import AnalysisContext, ShardAnalyzer, resolve_analyses
from repro.core.analyzer import ThreadTimingAnalyzer
from repro.experiments.backends import get_backend
from repro.experiments.config import CampaignConfig
from repro.experiments.session import CampaignSession

#: the report-producing passes (earlybird excluded to keep both sides equal)
ANALYSES = ("percentiles", "histogram", "laggards", "reclaimable", "normality")


def _config(trials: int = 2) -> CampaignConfig:
    return CampaignConfig.benchmark_scale(application="minife").scaled(trials=trials)


def _merged_report(config: CampaignConfig):
    dataset = CampaignSession(config).run(use_cache=False).dataset
    return ThreadTimingAnalyzer(dataset).report(include_earlybird=False)


def _streaming_report(config: CampaignConfig, exact: bool = True):
    results = CampaignSession(config).analyze(analyses=ANALYSES, exact=exact)
    return results.report(include_earlybird=False)


def _merged_accumulator_bytes(config: CampaignConfig) -> int:
    """Pickled size of the fully merged (pre-finalize) pass states in
    bounded mode — the streaming path's peak retained analysis state.

    Sketch capacities are set low enough that every sketch is saturated at
    the small campaign already: beyond saturation the retained state is a
    function of the sketch capacity, not of how many shards streamed
    through it.
    """
    from repro.analysis import (
        HistogramPass,
        LaggardsPass,
        NormalityPass,
        PercentilesPass,
        ReclaimablePass,
    )

    backend = get_backend(config.backend)
    context = AnalysisContext.from_config(
        config, exact=False, metadata=backend.metadata(config)
    )
    passes = resolve_analyses(
        [
            PercentilesPass(sketch_capacity=128),
            HistogramPass(),
            LaggardsPass(),
            ReclaimablePass(sketch_capacity=128),
            NormalityPass(sketch_capacity=1024),
        ]
    )
    mapper = ShardAnalyzer(passes, context)
    merged = None
    for shard in backend.iter_shards(config):
        partial = mapper(shard)
        if merged is None:
            merged = partial
        else:
            merged = {
                p.name: p.merge(merged[p.name], partial[p.name]) for p in passes
            }
    return len(pickle.dumps(merged))


@pytest.mark.benchmark(group="analysis-streaming")
def test_merged_dataset_analysis(benchmark):
    config = _config()
    report = benchmark(_merged_report, config)
    assert report.n_samples == config.samples_per_application


@pytest.mark.benchmark(group="analysis-streaming")
def test_streaming_pass_analysis(benchmark):
    config = _config()
    # acceptance: the streaming path is field-for-field identical to the
    # merged-dataset path before we time it
    assert _streaming_report(config).as_dict() == _merged_report(config).as_dict()
    report = benchmark(_streaming_report, config)
    assert report.n_samples == config.samples_per_application


@pytest.mark.benchmark(group="analysis-streaming-memory")
def test_accumulator_memory_independent_of_shard_count(benchmark):
    small, large = _config(trials=2), _config(trials=6)
    small_bytes = _merged_accumulator_bytes(small)
    large_bytes = benchmark(_merged_accumulator_bytes, large)
    dataset_growth = (
        large.samples_per_application / small.samples_per_application
    )
    assert dataset_growth == pytest.approx(3.0)
    # bounded accumulators: 3x the shards, ~1x the retained state (sketches
    # saturate at their capacity; only integer tallies grow)
    assert large_bytes < 1.2 * small_bytes
    # and the retained state is a small fraction of the merged dataset the
    # in-memory path must hold (5 int/float columns x 8 bytes per sample)
    merged_dataset_bytes = large.samples_per_application * 8 * 5
    assert large_bytes < 0.1 * merged_dataset_bytes
