"""Throughput of the measurement-campaign substrates themselves.

Not a paper artefact, but the number a downstream user cares about when
scaling the reproduction up: samples generated per second on the vectorised
path, regions per second on the event-driven path, and normality tests per
second in the batch battery.
"""

import numpy as np

from repro.experiments.campaign import run_campaign
from repro.experiments.config import CampaignConfig
from repro.stats.battery import NormalityBattery


def test_vectorized_campaign_throughput(benchmark):
    config = CampaignConfig(
        application="minife", trials=1, processes=2, iterations=50, threads=48,
        seed=1,
    )
    dataset = benchmark(run_campaign, config)
    assert dataset.n_samples == 1 * 2 * 50 * 48


def test_event_campaign_throughput(benchmark):
    config = CampaignConfig(
        application="miniqmc", trials=1, processes=1, iterations=10, threads=24,
        seed=1, backend="event",
    )
    dataset = benchmark(run_campaign, config)
    assert dataset.n_samples == 240
    assert "start_ns" in dataset.columns


def test_batch_normality_battery_throughput(benchmark, rng_seed=3):
    groups = np.random.default_rng(rng_seed).normal(size=(2000, 48))
    battery = NormalityBattery()
    report = benchmark(battery.run, groups)
    assert report.n_groups == 2000
