"""Throughput of the measurement-campaign substrates themselves.

Not a paper artefact, but the number a downstream user cares about when
scaling the reproduction up: samples generated per second on each campaign
backend (``vectorized`` / ``batched`` / ``chunked`` at benchmark scale,
``event`` reduced), and normality tests per second in the batch battery.

Every backend benchmark stores ``samples_per_second`` in the pytest-benchmark
``extra_info``, so the CI benchmark job's ``bench.json`` carries per-backend
throughput alongside the raw timings; the schedule sweep additionally tags
each entry with its schedule clause, giving a per-(backend, schedule)
samples/sec table.  ``test_batched_speedup_guard`` is the regression guard
for the batched shard kernel: it fails the benchmark job if the
batched/vectorized speedup drops below 3x (the kernel's win at benchmark
scale is ~9-18x depending on the application, so 3x trips only on a real
regression, not on machine noise).  ``test_batched_workqueue_speedup_guard``
is the same guard for the row-vectorized work-queue kernel on a
``dynamic``-schedule campaign — the clause the per-row heap replay used to
bottleneck.  ``test_campaign_speedup_guard`` guards the whole-campaign
tensor backend: on an 8-shard dynamic-schedule MiniFE campaign it folds
the (deterministic) schedule once for the whole campaign where the batched
kernel replays the work queue per shard, so it must stay >= 3x the batched
path — a margin that *grows* with shard count, so the 8-shard measurement
is still the conservative end of the paper-scale range.  ``test_campaign_parallel_throughput``
sweeps the chunk worker pool over ``max_workers`` 1/2/4 (tagging each
entry with ``workers`` for the CI table), and
``test_campaign_parallel_scaling_guard`` requires the 4-worker fold to
stay >= 2x serial on machines with at least 4 cores.
"""

import dataclasses
import os
import time

import numpy as np
import pytest

from repro.experiments.backends import get_backend
from repro.experiments.config import CampaignConfig
from repro.stats.battery import NormalityBattery

#: guard threshold: batched must stay at least this much faster than
#: vectorized at benchmark scale
MIN_BATCHED_SPEEDUP = 3.0

#: same threshold for the work-queue (dynamic/guided) batch kernel
MIN_WORKQUEUE_SPEEDUP = 3.0

#: guard threshold: the whole-campaign tensor backend must stay at least
#: this much faster than the batched shard kernel on the dynamic-schedule
#: MiniFE campaign (one campaign-wide fold vs one work-queue replay per
#: shard; measured headroom ~4.8x at the guard's 8 shards, ~9x at paper
#: scale)
MIN_CAMPAIGN_SPEEDUP = 3.0

#: guard threshold: the chunk-parallel campaign fold at 4 workers must be
#: at least this much faster than the serial fold (needs >= 4 CPU cores;
#: the guard skips on smaller machines, where process workers merely
#: time-slice one core)
MIN_PARALLEL_SCALING = 2.0

#: the paper's scheduling clauses, swept per backend below
SCHEDULE_CLAUSES = ("static", "dynamic", "dynamic,4", "guided")


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _run_backend(config):
    return get_backend(config.backend).run(config)


def _best_rate(config, repeats: int = 3) -> float:
    """Best-of-N samples/sec of one campaign configuration."""
    runner = get_backend(config.backend)
    runner.run(config)  # warm-up: calibration, allocator, caches
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        dataset = runner.run(config)
        best = min(best, time.perf_counter() - start)
    return dataset.n_samples / best


@pytest.mark.parametrize("backend", ["vectorized", "batched", "chunked", "campaign"])
def test_campaign_backend_throughput(benchmark, backend):
    config = CampaignConfig(
        application="minife", trials=1, processes=2, iterations=200, threads=48,
        seed=1, backend=backend,
    )
    benchmark.group = "campaign-backends"
    dataset = benchmark(_run_backend, config)
    assert dataset.n_samples == config.samples_per_application
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["samples_per_second"] = (
        dataset.n_samples / benchmark.stats.stats.min
    )


@pytest.mark.parametrize("application", ["minife", "minimd", "miniqmc"])
def test_batched_backend_throughput_per_app(benchmark, application):
    config = CampaignConfig(
        application=application, trials=1, processes=2, iterations=200,
        threads=48, seed=1, backend="batched",
    )
    benchmark.group = "batched-backend"
    dataset = benchmark(_run_backend, config)
    assert dataset.n_samples == config.samples_per_application
    benchmark.extra_info["backend"] = "batched"
    benchmark.extra_info["samples_per_second"] = (
        dataset.n_samples / benchmark.stats.stats.min
    )


@pytest.mark.parametrize("schedule", SCHEDULE_CLAUSES)
@pytest.mark.parametrize("backend", ["vectorized", "batched", "campaign"])
def test_campaign_schedule_throughput(benchmark, backend, schedule):
    """Per-(backend, schedule) sampling throughput.

    The work-queue clauses (``dynamic``/``guided``) are where the batched
    backend's row-vectorized replay replaced the per-row heap loop; the CI
    benchmark job prints this table from ``bench.json``.  MiniMD is the app
    whose per-iteration neighbour-count fluctuations make every iteration a
    fresh schedule fold (MiniFE's matrix is deterministic, so both backends
    fold its schedule once per shard and the clause barely matters there).
    """
    config = CampaignConfig(
        application="minimd", trials=1, processes=2, iterations=200, threads=48,
        seed=1, backend=backend, schedule=schedule,
    )
    benchmark.group = "campaign-schedules"
    dataset = benchmark(_run_backend, config)
    assert dataset.n_samples == config.samples_per_application
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["schedule"] = schedule
    benchmark.extra_info["samples_per_second"] = (
        dataset.n_samples / benchmark.stats.stats.min
    )


@pytest.mark.parametrize("max_workers", [1, 2, 4])
def test_campaign_parallel_throughput(benchmark, max_workers):
    """samples/sec of the chunk-parallel campaign fold at 1 / 2 / 4 workers.

    A 32-shard ``dynamic,4`` MiniFE campaign, big enough that the pool and
    shared-memory overheads amortize on multi-core machines; ``workers`` in
    ``extra_info`` feeds the CI benchmark table's workers column.  The
    scaling *guard* lives in :func:`test_campaign_parallel_scaling_guard` —
    this entry only records the sweep.
    """
    config = dataclasses.replace(
        CampaignConfig.benchmark_scale("minife")
        .with_schedule("dynamic,4")
        .with_backend("campaign"),
        trials=16,
        max_workers=max_workers,
    )
    benchmark.group = "campaign-workers"
    dataset = benchmark(_run_backend, config)
    assert dataset.n_samples == config.samples_per_application
    benchmark.extra_info["backend"] = "campaign"
    benchmark.extra_info["schedule"] = "dynamic,4"
    benchmark.extra_info["workers"] = max_workers
    benchmark.extra_info["samples_per_second"] = (
        dataset.n_samples / benchmark.stats.stats.min
    )


def test_event_campaign_throughput(benchmark):
    config = CampaignConfig(
        application="miniqmc", trials=1, processes=1, iterations=10, threads=24,
        seed=1, backend="event",
    )
    benchmark.group = "campaign-backends"
    dataset = benchmark(_run_backend, config)
    assert dataset.n_samples == 240
    assert "start_ns" in dataset.columns
    benchmark.extra_info["backend"] = "event"
    benchmark.extra_info["samples_per_second"] = (
        dataset.n_samples / benchmark.stats.stats.min
    )


def test_batched_speedup_guard():
    """Regression guard: the batched kernel must stay >= 3x the vectorized
    path at benchmark scale (measured headroom is ~9x on MiniFE)."""
    base = CampaignConfig.benchmark_scale("minife")
    vectorized = _best_rate(base.with_backend("vectorized"))
    batched = _best_rate(base.with_backend("batched"))
    speedup = batched / vectorized
    assert speedup >= MIN_BATCHED_SPEEDUP, (
        f"batched backend is only {speedup:.1f}x the vectorized path "
        f"({batched:,.0f} vs {vectorized:,.0f} samples/s); the shard kernel "
        f"has regressed below the {MIN_BATCHED_SPEEDUP}x guard"
    )


def test_batched_workqueue_speedup_guard():
    """Regression guard for the row-vectorized work-queue kernel: on a
    ``dynamic``-schedule campaign the batched backend must stay >= 3x the
    vectorized path.  Before the kernel existed ``simulate_batch`` replayed
    dynamic rows one at a time through the Python heap loop and the two
    backends ran neck-and-neck on this clause.  MiniMD because its
    per-iteration cost fluctuations force a schedule fold per row — the path
    the kernel vectorizes (measured headroom ~19x; MiniFE's deterministic
    matrix folds once per shard on both backends, so it cannot expose a
    work-queue regression)."""
    base = CampaignConfig.benchmark_scale("minimd").with_schedule("dynamic")
    vectorized = _best_rate(base.with_backend("vectorized"))
    batched = _best_rate(base.with_backend("batched"))
    speedup = batched / vectorized
    assert speedup >= MIN_WORKQUEUE_SPEEDUP, (
        f"batched backend is only {speedup:.1f}x the vectorized path on a "
        f"dynamic schedule ({batched:,.0f} vs {vectorized:,.0f} samples/s); "
        f"the work-queue kernel has regressed below the "
        f"{MIN_WORKQUEUE_SPEEDUP}x guard"
    )


def test_campaign_speedup_guard():
    """Regression guard for the whole-campaign tensor backend: on an
    8-shard ``dynamic,4``-schedule MiniFE campaign it must stay >= 3x the
    batched shard kernel.  MiniFE because its matrix is deterministic: the
    campaign backend folds the schedule *once* for the entire campaign
    (broadcasting the cached busy-time row over every shard), while the
    batched backend replays the work queue per shard — exactly the
    per-shard cost the tensor lift amortizes.  The measured speedup grows
    linearly with shard count (~3x at benchmark scale's 4 shards, ~4.8x at
    the 8 measured here, ~9x at paper scale's 80); benchmark scale itself
    sits right on the threshold now that the shard-keyed RNG restructure
    charges the campaign backend one noise scope per shard, so the guard
    measures one doubling up, where amortization has room to show and the
    ~1.6x headroom trips only on a real regression of the campaign fold,
    not on machine noise."""
    base = dataclasses.replace(
        CampaignConfig.benchmark_scale("minife").with_schedule("dynamic,4"),
        trials=4,
    )
    batched = _best_rate(base.with_backend("batched"))
    campaign = _best_rate(base.with_backend("campaign"))
    speedup = campaign / batched
    assert speedup >= MIN_CAMPAIGN_SPEEDUP, (
        f"campaign backend is only {speedup:.1f}x the batched path on a "
        f"dynamic,4 schedule ({campaign:,.0f} vs {batched:,.0f} samples/s); "
        f"the whole-campaign tensor kernel has regressed below the "
        f"{MIN_CAMPAIGN_SPEEDUP}x guard"
    )


def test_campaign_parallel_scaling_guard():
    """Regression guard for the chunk worker pool: a 128-shard
    ``dynamic,4`` MiniFE campaign at ``max_workers=4`` must run >= 2x
    faster than the serial fold.  The campaign is scaled up on the trials
    axis because the per-chunk fold is only ~15 ms — at benchmark scale's 4
    shards the pool could never amortize its startup.  Requires >= 4 CPU
    cores: process workers on fewer cores time-slice instead of scaling, so
    the guard skips (CI's runners have 4)."""
    cores = _available_cores()
    if cores < 4:
        pytest.skip(f"parallel scaling needs >= 4 CPU cores, have {cores}")
    base = dataclasses.replace(
        CampaignConfig.benchmark_scale("minife")
        .with_schedule("dynamic,4")
        .with_backend("campaign"),
        trials=64,
    )
    serial = _best_rate(dataclasses.replace(base, max_workers=1))
    parallel = _best_rate(dataclasses.replace(base, max_workers=4))
    speedup = parallel / serial
    assert speedup >= MIN_PARALLEL_SCALING, (
        f"chunk-parallel campaign at 4 workers is only {speedup:.1f}x the "
        f"serial fold ({parallel:,.0f} vs {serial:,.0f} samples/s); the "
        f"worker pool has regressed below the {MIN_PARALLEL_SCALING}x guard"
    )


def test_batch_normality_battery_throughput(benchmark, rng_seed=3):
    groups = np.random.default_rng(rng_seed).normal(size=(2000, 48))
    battery = NormalityBattery()
    report = benchmark(battery.run, groups)
    assert report.n_groups == 2000
