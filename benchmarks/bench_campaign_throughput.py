"""Throughput of the measurement-campaign substrates themselves.

Not a paper artefact, but the number a downstream user cares about when
scaling the reproduction up: samples generated per second on each campaign
backend (``vectorized`` / ``batched`` / ``chunked`` at benchmark scale,
``event`` reduced), and normality tests per second in the batch battery.

Every backend benchmark stores ``samples_per_second`` in the pytest-benchmark
``extra_info``, so the CI benchmark job's ``bench.json`` carries per-backend
throughput alongside the raw timings.  ``test_batched_speedup_guard`` is the
regression guard for the batched shard kernel: it fails the benchmark job if
the batched/vectorized speedup drops below 3x (the kernel's win at benchmark
scale is ~9-18x depending on the application, so 3x trips only on a real
regression, not on machine noise).
"""

import time

import numpy as np
import pytest

from repro.experiments.backends import get_backend
from repro.experiments.config import CampaignConfig
from repro.stats.battery import NormalityBattery

#: guard threshold: batched must stay at least this much faster than
#: vectorized at benchmark scale
MIN_BATCHED_SPEEDUP = 3.0


def _run_backend(config):
    return get_backend(config.backend).run(config)


@pytest.mark.parametrize("backend", ["vectorized", "batched", "chunked"])
def test_campaign_backend_throughput(benchmark, backend):
    config = CampaignConfig(
        application="minife", trials=1, processes=2, iterations=200, threads=48,
        seed=1, backend=backend,
    )
    benchmark.group = "campaign-backends"
    dataset = benchmark(_run_backend, config)
    assert dataset.n_samples == config.samples_per_application
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["samples_per_second"] = (
        dataset.n_samples / benchmark.stats.stats.min
    )


@pytest.mark.parametrize("application", ["minife", "minimd", "miniqmc"])
def test_batched_backend_throughput_per_app(benchmark, application):
    config = CampaignConfig(
        application=application, trials=1, processes=2, iterations=200,
        threads=48, seed=1, backend="batched",
    )
    benchmark.group = "batched-backend"
    dataset = benchmark(_run_backend, config)
    assert dataset.n_samples == config.samples_per_application
    benchmark.extra_info["backend"] = "batched"
    benchmark.extra_info["samples_per_second"] = (
        dataset.n_samples / benchmark.stats.stats.min
    )


def test_event_campaign_throughput(benchmark):
    config = CampaignConfig(
        application="miniqmc", trials=1, processes=1, iterations=10, threads=24,
        seed=1, backend="event",
    )
    benchmark.group = "campaign-backends"
    dataset = benchmark(_run_backend, config)
    assert dataset.n_samples == 240
    assert "start_ns" in dataset.columns
    benchmark.extra_info["backend"] = "event"
    benchmark.extra_info["samples_per_second"] = (
        dataset.n_samples / benchmark.stats.stats.min
    )


def test_batched_speedup_guard():
    """Regression guard: the batched kernel must stay >= 3x the vectorized
    path at benchmark scale (measured headroom is ~9x on MiniFE)."""

    def best_rate(backend: str, repeats: int = 3) -> float:
        config = CampaignConfig.benchmark_scale("minife").with_backend(backend)
        runner = get_backend(backend)
        runner.run(config)  # warm-up: calibration, allocator, caches
        best = np.inf
        for _ in range(repeats):
            start = time.perf_counter()
            dataset = runner.run(config)
            best = min(best, time.perf_counter() - start)
        return dataset.n_samples / best

    vectorized = best_rate("vectorized")
    batched = best_rate("batched")
    speedup = batched / vectorized
    assert speedup >= MIN_BATCHED_SPEEDUP, (
        f"batched backend is only {speedup:.1f}x the vectorized path "
        f"({batched:,.0f} vs {vectorized:,.0f} samples/s); the shard kernel "
        f"has regressed below the {MIN_BATCHED_SPEEDUP}x guard"
    )


def test_batch_normality_battery_throughput(benchmark, rng_seed=3):
    groups = np.random.default_rng(rng_seed).normal(size=(2000, 48))
    battery = NormalityBattery()
    report = benchmark(battery.run, groups)
    assert report.n_groups == 2000
