"""Serial vs parallel campaign throughput.

Benchmarks the same benchmark-scale MiniFE campaign executed serially and
fanned out across a 4-worker process pool (``CampaignConfig.max_workers``).
The qualitative claims asserted before timing:

* the parallel run is bit-identical to the serial run (the executor's
  per-shard stream re-derivation guarantee), and
* parallelism actually helps — the grouped pytest-benchmark output
  (``--benchmark-only --benchmark-group-by=group``) shows the serial/parallel
  ratio; on a ≥4-core machine the 4-worker run completes the campaign's
  2×2 shards concurrently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import CampaignConfig
from repro.experiments.session import CampaignSession


def _config(max_workers: int) -> CampaignConfig:
    return CampaignConfig.benchmark_scale(application="minife").parallel(max_workers)


def _run(max_workers: int):
    return CampaignSession(_config(max_workers)).run().dataset


@pytest.mark.benchmark(group="campaign-parallel")
def test_campaign_serial_baseline(benchmark):
    dataset = benchmark(_run, 1)
    assert dataset.n_samples == _config(1).samples_per_application


@pytest.mark.benchmark(group="campaign-parallel")
def test_campaign_parallel_4_workers(benchmark):
    serial = _run(1)
    dataset = benchmark(_run, 4)
    assert dataset.n_samples == serial.n_samples
    assert set(dataset.columns) == set(serial.columns)
    for name in serial.columns:
        np.testing.assert_array_equal(dataset.column(name), serial.column(name))


# ----------------------------------------------------------------------
# A deeper campaign (8 trials -> 16 shards) amortises the one-off pool
# start-up, showing the asymptotic serial/parallel ratio a paper-scale
# campaign sees.
# ----------------------------------------------------------------------
def _scaled_run(max_workers: int):
    config = _config(max_workers).scaled(trials=8)
    return CampaignSession(config).run().dataset


@pytest.mark.benchmark(group="campaign-parallel-16-shards")
def test_scaled_campaign_serial_baseline(benchmark):
    dataset = benchmark(_scaled_run, 1)
    assert dataset.n_trials == 8


@pytest.mark.benchmark(group="campaign-parallel-16-shards")
def test_scaled_campaign_parallel_4_workers(benchmark):
    dataset = benchmark(_scaled_run, 4)
    assert dataset.n_trials == 8
