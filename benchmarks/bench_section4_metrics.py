"""§4.2 (S1) — scalar metrics: median arrival, IQR, laggard %, reclaimable
time, idle ratio.

Paper values and the definition caveat are recorded in
``repro.experiments.paper`` and DESIGN.md; the assertions here are the
qualitative claims the §5 discussion rests on:

* MiniQMC has by far the largest reclaimable time per iteration;
* MiniFE's laggard fraction is a "frequent" ~20 %, MiniMD's a "rare" ~5 %;
* MiniFE's idle ratio is the smallest of the three.
"""

import pytest

from repro.experiments.tables import minimd_phase_table, section4_metrics_table


def test_section4_metrics_table(benchmark, bench_datasets):
    rows = benchmark(section4_metrics_table, bench_datasets)
    by_app = {row["application"]: row for row in rows}

    reclaim = {app: by_app[app]["mean_reclaimable_ms (measured)"] for app in by_app}
    assert reclaim["MiniQMC"] > 5 * reclaim["MiniFE"]
    assert reclaim["MiniQMC"] > 5 * reclaim["MiniMD"]

    laggard = {app: by_app[app]["laggard_fraction (measured)"] for app in by_app}
    assert laggard["MiniFE"] > 0.10

    idle = {app: by_app[app]["mean_idle_ratio (measured)"] for app in by_app}
    assert idle["MiniQMC"] > idle["MiniFE"] > 0.0

    for app in ("MiniFE", "MiniMD", "MiniQMC"):
        measured = by_app[app]["mean_median_arrival_ms (measured)"]
        paper = by_app[app]["mean_median_arrival_ms (paper)"]
        assert measured == pytest.approx(paper, rel=0.10)


def test_minimd_phase_metrics(benchmark, minimd_ds):
    rows = benchmark(minimd_phase_table, minimd_ds)
    warmup, steady = rows
    assert warmup["mean_iqr_ms (measured)"] > 3 * steady["mean_iqr_ms (measured)"]
    assert warmup["mean_iqr_ms (measured)"] == pytest.approx(
        warmup["mean_iqr_ms (paper)"], rel=0.5
    )
